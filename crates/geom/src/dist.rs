//! Euclidean distance kernels.
//!
//! All clustering hot loops compare *squared* distances against a
//! precomputed ε² to avoid `sqrt` calls; the early-exit variant
//! [`within_sq`] additionally abandons the accumulation as soon as the
//! partial sum exceeds the threshold, which pays off at high dimension
//! (the paper's KDDB datasets go up to 74-d).

/// Squared Euclidean distance between two equal-length coordinate slices.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length coordinate slices.
#[inline]
pub fn dist_euclidean(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// `true` iff `DIST(a, b) < threshold` (strict, matching the paper's
/// ε-neighbourhood definition), evaluated on squared values.
#[inline]
pub fn within(a: &[f64], b: &[f64], threshold: f64) -> bool {
    within_sq(a, b, threshold * threshold)
}

/// `true` iff `DIST(a, b)² < threshold_sq`, abandoning the accumulation
/// early once the partial sum already exceeds the bound.
///
/// The early exit is checked every 4 components so low dimensions do not pay
/// branch overhead on every term.
#[inline]
pub fn within_sq(a: &[f64], b: &[f64], threshold_sq: f64) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in &mut chunks {
        for k in 0..4 {
            let d = ca[k] - cb[k];
            acc += d * d;
        }
        if acc >= threshold_sq {
            return false;
        }
    }
    let ra = &a[a.len() - a.len() % 4..];
    let rb = &b[b.len() - b.len() % 4..];
    for (x, y) in ra.iter().zip(rb.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc < threshold_sq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_sq_basic() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist_sq(&[1.5], &[1.5]), 0.0);
    }

    #[test]
    fn within_is_strict() {
        // Exactly at the threshold must be excluded (paper: DIST < eps).
        assert!(!within(&[0.0, 0.0], &[3.0, 4.0], 5.0));
        assert!(within(&[0.0, 0.0], &[3.0, 4.0], 5.0 + 1e-9));
        assert!(within(&[0.0], &[0.0], 1e-12));
    }

    #[test]
    fn within_sq_matches_dist_sq_high_dim() {
        // 7-d exercises both the chunked part and the remainder.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let b = [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let d2 = dist_sq(&a, &b);
        assert!(within_sq(&a, &b, d2 + 1e-12));
        assert!(!within_sq(&a, &b, d2));
        assert!(!within_sq(&a, &b, d2 - 1e-12));
    }

    #[test]
    fn within_sq_early_exit_correct() {
        // First chunk alone exceeds the bound: must still answer correctly.
        let a = [100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0; 8];
        assert!(!within_sq(&a, &b, 1.0));
        assert!(within_sq(&a, &b, 10001.0));
    }
}
