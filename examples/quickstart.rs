//! Quickstart: cluster a synthetic dataset with μDBSCAN, inspect the
//! result, and verify it is exactly the classical DBSCAN clustering.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mudbscan_repro::prelude::*;

fn main() {
    // 5,000 points: four Gaussian blobs plus 5 % uniform noise.
    let dataset = data::gaussian_mixture(5_000, 3, 4, 1.5, 0.05, 42);
    let params = DbscanParams::new(1.0, 5);

    println!("μDBSCAN quickstart — n={}, dim={}", dataset.len(), dataset.dim());
    println!("parameters: eps={}, MinPts={}\n", params.eps, params.min_pts);

    let out = Runner::new(params).run(&dataset).unwrap();

    println!("clusters found   : {}", out.clustering.n_clusters);
    println!("core points      : {}", out.clustering.core_count());
    println!("noise points     : {}", out.clustering.noise_count());
    if let RunDetails::Sequential { mc_count, avg_mc_size, .. } = out.details {
        println!("micro-clusters   : {mc_count} (avg {avg_mc_size:.1} points each)");
    }
    println!("queries saved    : {:.1}% (wndq-core labelling)", out.counters.pct_queries_saved());

    let mut sizes = out.clustering.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("cluster sizes    : {:?}", &sizes[..sizes.len().min(8)]);

    println!("\nphase split-up:");
    for (name, secs, pct) in out.phases.split_up() {
        println!("  {name:<20} {secs:>8.4}s  {pct:>5.1}%");
    }

    // The headline guarantee: the clustering equals classical DBSCAN.
    let reference = naive_dbscan(&dataset, &params);
    let report = check_exact(&out.clustering, &reference, &dataset, &params);
    println!(
        "\nexactness vs naive DBSCAN: {}",
        if report.is_exact() { "EXACT ✓" } else { "MISMATCH ✗" }
    );
    assert!(report.is_exact());
}
