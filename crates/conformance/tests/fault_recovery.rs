//! Proptest: fault injection never changes the answer.
//!
//! For randomized [`FaultPlan`]s — covering every fault class the
//! μDBSCAN-D program shape admits (crash, halo-message drop, duplication,
//! inbox reorder, straggler) — across the Blobs / Uniform / Chains dataset
//! families and ranks ∈ {2, 4}:
//!
//! 1. the recovered clustering must be bit-identical to the fault-free
//!    run of the same configuration, and
//! 2. replaying the same plan seed must reproduce the same retry and
//!    recovery counters ([`FaultStats::replay_signature`]).

use conformance::{DatasetSpec, Family};
use geom::{Dataset, DbscanParams};
use mudbscan::prelude::{Fault, FaultPlan, RunDetails, Runner};
use mudbscan::Clustering;
use proptest::prelude::*;

/// μDBSCAN-D's superstep layout: local clustering (0) and cross-partition
/// edge collection (1) are compute supersteps; the merge-edge exchange is
/// superstep 2. Mirrors `dist/tests/fault_recovery.rs`.
const COMPUTE_STEPS: &[usize] = &[0, 1];
const EXCHANGE_STEPS: &[usize] = &[2];

/// Runs μDBSCAN-D on `data`, optionally under `plan`, returning the
/// clustering and the fault-layer replay signature.
fn dist_run(
    params: DbscanParams,
    ranks: usize,
    plan: Option<FaultPlan>,
    data: &Dataset,
) -> Result<(Clustering, [u64; 10]), TestCaseError> {
    let mut runner = Runner::new(params).ranks(ranks);
    if let Some(plan) = plan {
        runner = runner.fault_plan(plan);
    }
    let out = match runner.run(data) {
        Ok(out) => out,
        Err(e) => return Err(TestCaseError::fail(format!("distributed run failed: {e}"))),
    };
    let RunDetails::Distributed { ref fault_stats, .. } = out.details else {
        return Err(TestCaseError::fail("ranks() run must report distributed details"));
    };
    Ok((out.clustering, fault_stats.replay_signature()))
}

fn check(
    family: Family,
    n: usize,
    dim: usize,
    seed: u64,
    eps: f64,
    min_pts: usize,
    ranks: usize,
) -> Result<(), TestCaseError> {
    let spec = DatasetSpec { family, n, dim, seed };
    let data = Dataset::from_rows(&spec.rows());
    let params = DbscanParams::new(eps, min_pts);

    let (clean, clean_sig) = dist_run(params, ranks, None, &data)?;
    prop_assert_eq!(clean_sig, [0u64; 10], "fault-free run must be quiet");

    let plan = FaultPlan::generate(seed, ranks, COMPUTE_STEPS, EXCHANGE_STEPS);
    let (faulted, sig) = dist_run(params, ranks, Some(plan.clone()), &data)?;
    prop_assert_eq!(
        &faulted,
        &clean,
        "recovery must be exact: family={:?} n={} dim={} seed={} ranks={} plan={:?}",
        family,
        n,
        dim,
        seed,
        ranks,
        plan
    );
    // Message faults aimed at idle links leave no counter trace, but a
    // scheduled crash or straggler always manifests.
    let has_crash = plan.faults.iter().any(|f| matches!(f, Fault::Crash { .. }));
    let has_straggler = plan.faults.iter().any(|f| matches!(f, Fault::Straggler { .. }));
    prop_assert!(!has_crash || sig[0] >= 1, "scheduled crash left no counter trace: {:?}", sig);
    prop_assert!(
        !has_straggler || sig[8] >= 1,
        "scheduled straggler left no counter trace: {:?}",
        sig
    );

    // Replay: the same plan seed must reproduce the exact counters.
    let replay_plan = FaultPlan::generate(seed, ranks, COMPUTE_STEPS, EXCHANGE_STEPS);
    let (replayed, replay_sig) = dist_run(params, ranks, Some(replay_plan), &data)?;
    prop_assert_eq!(replay_sig, sig, "replaying seed {} must reproduce the counters", seed);
    prop_assert_eq!(replayed, faulted);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blobs_recover_exactly(seed in 0u64..u64::MAX / 2, n in 8usize..48, dim in 1usize..5,
                             eps_steps in 1usize..10, min_pts in 1usize..6,
                             four_ranks in any::<bool>()) {
        let ranks = if four_ranks { 4 } else { 2 };
        check(Family::Blobs, n, dim, seed, eps_steps as f64 * 0.15, min_pts, ranks)?;
    }

    #[test]
    fn uniform_recover_exactly(seed in 0u64..u64::MAX / 2, n in 8usize..48, dim in 1usize..5,
                               eps_steps in 1usize..10, min_pts in 1usize..6,
                               four_ranks in any::<bool>()) {
        let ranks = if four_ranks { 4 } else { 2 };
        check(Family::Uniform, n, dim, seed, eps_steps as f64 * 0.15, min_pts, ranks)?;
    }

    #[test]
    fn chains_recover_exactly(seed in 0u64..u64::MAX / 2, n in 8usize..48, dim in 1usize..5,
                              eps_steps in 1usize..10, min_pts in 1usize..6,
                              four_ranks in any::<bool>()) {
        let ranks = if four_ranks { 4 } else { 2 };
        check(Family::Chains, n, dim, seed, eps_steps as f64 * 0.15, min_pts, ranks)?;
    }
}
