//! Registry audit: every obs key emitted by an instrumented full run
//! must be documented in `docs/BENCH_SCHEMA.md`.
//!
//! The doc's "## Key registry" section lists every counter, value,
//! histogram, and span name as a backticked entry. Entries may use
//! `<...>`-style wildcard segments (e.g. `bsp/<phase>/comm_bytes`) for
//! families keyed by a dynamic name. A new `obs::record_*` call or span
//! whose key is not in the registry fails here, keeping the docs and the
//! instrumentation in lock-step.

use data::paper_table2_specs;
use dist::{DistConfig, MuDbscanD, ShardedMuDbscan, ShardedOptions};
use mudbscan::{MuDbscan, ParMuDbscan};
use std::collections::BTreeSet;

/// `key` matches `entry` if they are equal segment-by-segment, with
/// `<...>` entry segments matching any single key segment.
fn matches(entry: &str, key: &str) -> bool {
    let es: Vec<&str> = entry.split('/').collect();
    let ks: Vec<&str> = key.split('/').collect();
    es.len() == ks.len()
        && es.iter().zip(&ks).all(|(e, k)| *e == *k || (e.starts_with('<') && e.ends_with('>')))
}

/// All backticked strings in the doc's "## Key registry" section.
fn registry_entries(doc: &str) -> Vec<String> {
    let section = doc
        .split("## Key registry")
        .nth(1)
        .expect("docs/BENCH_SCHEMA.md must have a '## Key registry' section");
    let mut out = Vec::new();
    for chunk in section.split('`').skip(1).step_by(2) {
        if !chunk.is_empty() && !chunk.contains('\n') {
            out.push(chunk.to_string());
        }
    }
    assert!(!out.is_empty(), "key registry section has no backticked entries");
    out
}

#[test]
fn every_emitted_key_is_documented() {
    let doc_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/BENCH_SCHEMA.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));
    let entries = registry_entries(&doc);

    // One instrumented run of each execution mode on a small workload
    // exercises every emission site: sequential, shared-memory parallel
    // (tiling + reconcile paths), distributed (BSP + halo), and the
    // out-of-core sharded executor (shard planning, gather, merge).
    let spec = &paper_table2_specs()[0];
    let data = spec.generate_n(600, 2019);
    obs::reset();
    obs::enable();
    let _ = MuDbscan::from_params(spec.params).run(&data);
    let _ = ParMuDbscan::from_params(spec.params, 2).run(&data);
    let _ = MuDbscanD::from_params(spec.params, DistConfig::new(2)).run(&data).expect("dist run");
    let _ = ShardedMuDbscan::new(
        spec.params,
        ShardedOptions { shards: Some(2), threads: 2, ..Default::default() },
    )
    .run_source(&data);
    obs::disable();
    let report = obs::take_report();
    obs::reset();

    let mut keys: BTreeSet<String> = BTreeSet::new();
    keys.extend(report.counts.iter().map(|(k, _)| k.clone()));
    keys.extend(report.values.iter().map(|(k, _)| k.clone()));
    keys.extend(report.hists.iter().map(|(k, _)| k.clone()));
    // Span paths are compositional (`dist/local_clustering/mudbscan/...`),
    // so the registry lists span *names*; audit each unique segment.
    for (path, _) in &report.spans {
        keys.extend(path.split('/').map(str::to_string));
    }
    assert!(keys.len() > 20, "instrumented run emitted suspiciously few keys: {keys:?}");

    let undocumented: Vec<&String> =
        keys.iter().filter(|k| !entries.iter().any(|e| matches(e, k))).collect();
    assert!(
        undocumented.is_empty(),
        "obs keys missing from the '## Key registry' section of docs/BENCH_SCHEMA.md: \
         {undocumented:?}"
    );
}

#[test]
fn wildcard_matching_rules() {
    assert!(matches("query/node_visits", "query/node_visits"));
    assert!(matches("bsp/<phase>/comm_bytes", "bsp/halo_exchange/comm_bytes"));
    assert!(!matches("bsp/<phase>/comm_bytes", "bsp/comm_bytes"));
    assert!(!matches("query/node_visits", "query/candidates"));
}
