//! The BSP engine: superstep execution, message routing, virtual clocks.

use crate::msgsize::MsgSize;
use metrics::{PhaseTimer, Stopwatch};

/// α–β communication cost model: every superstep with communication costs
/// `latency + h / bandwidth` virtual seconds, where `h` is the maximum
/// number of bytes any single rank sends or receives (the BSP `L + g·h`
/// term).
#[derive(Debug, Clone, Copy)]
pub struct CommModel {
    /// Per-superstep synchronisation/latency cost in seconds (MPI
    /// collective launch, ~tens of µs on a commodity cluster).
    pub latency_s: f64,
    /// Link bandwidth in bytes/second (10 GbE default).
    pub bandwidth_bytes_per_s: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        Self { latency_s: 25e-6, bandwidth_bytes_per_s: 1.25e9 }
    }
}

/// How rank closures are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Run ranks one after another on the calling thread, timing each —
    /// exact virtual clocks on any host. Default.
    #[default]
    Sequential,
    /// Run every rank on its own OS thread per superstep — demonstrates
    /// real data-parallelism; virtual clocks then reflect wall time under
    /// whatever core count the host has.
    Threaded,
}

/// An outgoing message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Destination rank.
    pub to: usize,
    /// Payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Address `msg` to rank `to`.
    pub fn new(to: usize, msg: M) -> Self {
        Self { to, msg }
    }
}

/// Per-rank virtual-clock totals, accumulated across supersteps. The
/// BSP barrier model charges every rank the same communication time per
/// superstep, but compute time is each rank's own — the spread across
/// ranks IS the load imbalance the paper's kd-tree partitioning argues
/// about, and what the per-rank BSP timeline in the bench schema (v3)
/// summarises.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankClock {
    /// Virtual seconds this rank spent computing.
    pub compute_secs: f64,
    /// Virtual seconds this rank spent in communication/barrier.
    pub comm_secs: f64,
    /// Bytes this rank sent.
    pub bytes_sent: u64,
    /// Bytes this rank received.
    pub bytes_received: u64,
}

/// The engine: `p` rank states, virtual clocks, makespan accounting.
pub struct Bsp<S> {
    states: Vec<S>,
    mode: ExecMode,
    comm: CommModel,
    /// Virtual makespan accumulated so far (seconds).
    makespan: f64,
    /// Makespan split by phase label.
    phase_times: PhaseTimer,
    current_phase: String,
    /// Total bytes routed between ranks.
    comm_bytes: u64,
    /// Number of supersteps executed.
    steps: usize,
    /// Per-rank virtual-clock totals.
    rank_clocks: Vec<RankClock>,
}

impl<S: Send> Bsp<S> {
    /// Engine over the given per-rank states.
    pub fn new(states: Vec<S>) -> Self {
        assert!(!states.is_empty(), "need at least one rank");
        let p = states.len();
        Self {
            states,
            mode: ExecMode::Sequential,
            comm: CommModel::default(),
            makespan: 0.0,
            phase_times: PhaseTimer::new(),
            current_phase: "unphased".to_string(),
            comm_bytes: 0,
            steps: 0,
            rank_clocks: vec![RankClock::default(); p],
        }
    }

    /// Select the execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Override the communication cost model.
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Number of ranks (`p`).
    pub fn size(&self) -> usize {
        self.states.len()
    }

    /// Label subsequent supersteps with `name` (for per-phase makespans).
    pub fn phase(&mut self, name: &str) {
        self.current_phase = name.to_string();
    }

    /// Virtual makespan in seconds.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Per-phase makespan split-up.
    pub fn phase_times(&self) -> &PhaseTimer {
        &self.phase_times
    }

    /// Total bytes communicated.
    pub fn comm_bytes(&self) -> u64 {
        self.comm_bytes
    }

    /// Supersteps executed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Per-rank virtual-clock totals (compute/comm seconds, bytes
    /// sent/received), indexed by rank.
    pub fn rank_clocks(&self) -> &[RankClock] {
        &self.rank_clocks
    }

    /// Immutable view of the rank states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable view of the rank states (orchestrator-side setup only; not
    /// charged to any rank's clock).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Consume the engine, returning the rank states.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    fn charge(&mut self, secs: f64) {
        self.makespan += secs;
        let phase = self.current_phase.clone();
        self.phase_times.add_secs(&phase, secs);
    }

    /// Charge a superstep split into its compute and communication shares,
    /// exporting the split to `obs` when collection is on (the makespan and
    /// phase accounting are identical to a single [`Bsp::charge`]).
    fn charge_split(&mut self, compute_secs: f64, comm_secs: f64, comm_bytes: u64) {
        self.charge(compute_secs + comm_secs);
        if obs::enabled() {
            obs::record_value(
                &format!("bsp/{}/compute_virtual_secs", self.current_phase),
                compute_secs,
            );
            if comm_secs > 0.0 || comm_bytes > 0 {
                obs::record_value(
                    &format!("bsp/{}/comm_virtual_secs", self.current_phase),
                    comm_secs,
                );
                obs::record_count(&format!("bsp/{}/comm_bytes", self.current_phase), comm_bytes);
                // Per-superstep comm volume distribution (merging across
                // ranks/steps is exact: fixed bucket layout).
                obs::record_hist("bsp/comm_bytes_per_superstep", comm_bytes);
            }
        }
    }

    /// Emit one virtual-clock trace slice per rank starting at virtual
    /// time `start` (seconds). No-op unless tracing is on.
    fn trace_rank_slices(&self, start: f64, per_rank: &[f64], cat: &str) {
        if !obs::enabled() || !obs::tracing_enabled() {
            return;
        }
        for (r, &secs) in per_rank.iter().enumerate() {
            obs::trace::virtual_slice(r as u32, &self.current_phase, cat, start, secs);
        }
    }

    /// Time `f(r, &mut states[r])` for every rank, honouring the
    /// execution mode, and return the per-rank wall seconds plus the
    /// value the makespan should advance by (per-rank max in Sequential
    /// mode, the scope wall — including spawn overhead — in Threaded
    /// mode, exactly as before per-rank clocks existed).
    fn timed_ranks<T: Send>(
        mode: ExecMode,
        states: &mut [S],
        f: impl Fn(usize, &mut S) -> T + Sync,
    ) -> (Vec<T>, Vec<f64>, f64) {
        match mode {
            ExecMode::Sequential => {
                let mut out = Vec::with_capacity(states.len());
                let mut secs = Vec::with_capacity(states.len());
                for (r, s) in states.iter_mut().enumerate() {
                    let sw = Stopwatch::start();
                    out.push(f(r, s));
                    secs.push(sw.secs());
                }
                let max = secs.iter().cloned().fold(0.0f64, f64::max);
                (out, secs, max)
            }
            ExecMode::Threaded => {
                let sw = Stopwatch::start();
                let mut out = Vec::with_capacity(states.len());
                let mut secs = Vec::with_capacity(states.len());
                std::thread::scope(|scope| {
                    let handles: Vec<_> = states
                        .iter_mut()
                        .enumerate()
                        .map(|(r, s)| {
                            let f = &f;
                            scope.spawn(move || {
                                let sw = Stopwatch::start();
                                let v = f(r, s);
                                (v, sw.secs())
                            })
                        })
                        .collect();
                    for h in handles {
                        let (v, t) = h.join().expect("rank thread panicked");
                        out.push(v);
                        secs.push(t);
                    }
                });
                (out, secs, sw.secs())
            }
        }
    }

    /// A compute-only superstep: run `f` on every rank; the makespan
    /// advances by the slowest rank.
    pub fn run(&mut self, f: impl Fn(usize, &mut S) + Sync) {
        let (_, secs, max) = Self::timed_ranks(self.mode, &mut self.states, f);
        self.trace_rank_slices(self.makespan, &secs, "compute");
        for (clock, s) in self.rank_clocks.iter_mut().zip(&secs) {
            clock.compute_secs += s;
        }
        self.steps += 1;
        self.charge_split(max, 0.0, 0);
    }

    /// A communicating superstep: every rank produces envelopes, the
    /// engine routes them, then every rank consumes its inbox (messages
    /// arrive as `(source, payload)` sorted by source).
    pub fn exchange<M: Send + MsgSize>(
        &mut self,
        produce: impl Fn(usize, &mut S) -> Vec<Envelope<M>> + Sync,
        consume: impl Fn(usize, &mut S, Vec<(usize, M)>) + Sync,
    ) {
        let p = self.size();

        // Produce sub-phase.
        let (outboxes, produce_secs, produce_max) =
            Self::timed_ranks(self.mode, &mut self.states, &produce);
        self.trace_rank_slices(self.makespan, &produce_secs, "compute");

        // Route: h-relation cost = max over ranks of bytes in/out.
        let mut bytes_out = vec![0usize; p];
        let mut bytes_in = vec![0usize; p];
        let mut inboxes: Vec<Vec<(usize, M)>> = (0..p).map(|_| Vec::new()).collect();
        let mut total = 0usize;
        for (src, outbox) in outboxes.into_iter().enumerate() {
            for env in outbox {
                assert!(env.to < p, "rank {src} sent to invalid rank {}", env.to);
                let b = env.msg.byte_size();
                bytes_out[src] += b;
                bytes_in[env.to] += b;
                total += b;
                inboxes[env.to].push((src, env.msg));
            }
        }
        for inbox in &mut inboxes {
            inbox.sort_by_key(|(src, _)| *src);
        }
        let h = bytes_out.iter().zip(&bytes_in).map(|(o, i)| o.max(i)).max().copied().unwrap_or(0);
        let comm_secs = if total > 0 {
            self.comm.latency_s + h as f64 / self.comm.bandwidth_bytes_per_s
        } else {
            self.comm.latency_s
        };
        self.comm_bytes += total as u64;

        // The comm segment occupies the barrier interval after the
        // slowest producer, identically on every rank (BSP h-relation).
        let comm_start = self.makespan + produce_max;
        if obs::enabled() && obs::tracing_enabled() {
            self.trace_rank_slices(comm_start, &vec![comm_secs; p], "comm");
        }

        // Consume sub-phase.
        let inboxes = std::sync::Mutex::new(
            inboxes.into_iter().map(Some).collect::<Vec<Option<Vec<(usize, M)>>>>(),
        );
        let (_, consume_secs, consume_max) =
            Self::timed_ranks(self.mode, &mut self.states, |r, s| {
                let inbox =
                    inboxes.lock().expect("poisoned")[r].take().expect("inbox consumed once");
                consume(r, s, inbox)
            });
        self.trace_rank_slices(comm_start + comm_secs, &consume_secs, "compute");

        for (r, clock) in self.rank_clocks.iter_mut().enumerate() {
            clock.compute_secs += produce_secs[r] + consume_secs[r];
            clock.comm_secs += comm_secs;
            clock.bytes_sent += bytes_out[r] as u64;
            clock.bytes_received += bytes_in[r] as u64;
        }

        self.steps += 1;
        self.charge_split(produce_max + consume_max, comm_secs, total as u64);
    }

    /// Allgather collective: every rank contributes one value; the result
    /// (indexed by rank) is returned to the orchestrator AND can be read
    /// by every rank in a following superstep. Communication is charged
    /// as each rank broadcasting its value to all others.
    pub fn allgather<M: Send + Clone + MsgSize>(
        &mut self,
        f: impl Fn(usize, &mut S) -> M + Sync,
    ) -> Vec<M> {
        let p = self.size();
        let mut slots: Vec<Option<M>> = (0..p).map(|_| None).collect();
        {
            let slots_ref = std::sync::Mutex::new(&mut slots);
            self.exchange(
                |r, s| {
                    let v = f(r, s);
                    // Broadcast to all ranks (self included, matching
                    // MPI_Allgather semantics).
                    (0..p).map(|to| Envelope::new(to, v.clone())).collect()
                },
                |r, _s, inbox| {
                    if r == 0 {
                        let mut guard = slots_ref.lock().expect("poisoned");
                        for (src, m) in inbox {
                            guard[src] = Some(m);
                        }
                    }
                },
            );
        }
        slots.into_iter().map(|o| o.expect("allgather missing contribution")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_touches_every_rank() {
        let mut bsp = Bsp::new(vec![0u64; 8]);
        bsp.run(|r, s| *s = r as u64 * 10);
        assert_eq!(bsp.states(), &[0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(bsp.steps(), 1);
        assert!(bsp.makespan() > 0.0);
    }

    #[test]
    fn exchange_routes_point_to_point() {
        // Ring shift: rank r sends r² to (r+1) % p.
        let p = 5;
        let mut bsp = Bsp::new(vec![(0u64, 0usize); p]);
        bsp.exchange(
            |r, _s| vec![Envelope::new((r + 1) % p, (r * r) as u64)],
            |_r, s, inbox| {
                assert_eq!(inbox.len(), 1);
                s.0 = inbox[0].1;
                s.1 = inbox[0].0;
            },
        );
        for (r, &(val, src)) in bsp.states().iter().enumerate() {
            let expect_src = (r + p - 1) % p;
            assert_eq!(src, expect_src);
            assert_eq!(val, (expect_src * expect_src) as u64);
        }
        assert!(bsp.comm_bytes() > 0);
    }

    #[test]
    fn inbox_sorted_by_source() {
        let p = 6;
        let mut bsp = Bsp::new(vec![Vec::<usize>::new(); p]);
        bsp.exchange(
            |r, _s| (0..p).rev().map(|to| Envelope::new(to, r as u32)).collect(),
            |_r, s, inbox| {
                *s = inbox.iter().map(|(src, _)| *src).collect();
            },
        );
        for s in bsp.states() {
            assert_eq!(*s, (0..p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn allgather_replicates() {
        let mut bsp = Bsp::new(vec![0u32; 4]);
        let all = bsp.allgather(|r, _s| r as u32 + 100);
        assert_eq!(all, vec![100, 101, 102, 103]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let program = |bsp: &mut Bsp<Vec<u64>>| {
            bsp.run(|r, s| s.push(r as u64));
            bsp.exchange(
                |r, _s| vec![Envelope::new(0, r as u64 * 2)],
                |r, s, inbox| {
                    if r == 0 {
                        s.extend(inbox.into_iter().map(|(_, m)| m));
                    }
                },
            );
        };
        let mut a = Bsp::new(vec![Vec::new(); 4]);
        program(&mut a);
        let mut b = Bsp::new(vec![Vec::new(); 4]).with_mode(ExecMode::Threaded);
        program(&mut b);
        assert_eq!(a.into_states(), b.into_states());
    }

    #[test]
    fn phases_accumulate_makespan() {
        let mut bsp = Bsp::new(vec![(); 3]);
        bsp.phase("alpha");
        bsp.run(|_r, _s| {});
        bsp.phase("beta");
        bsp.run(|_r, _s| {});
        bsp.run(|_r, _s| {});
        let t = bsp.phase_times();
        assert!(t.secs("alpha") >= 0.0);
        assert!(t.secs("beta") >= 0.0);
        let total = t.total_secs();
        assert!((total - bsp.makespan()).abs() < 1e-9);
    }

    #[test]
    fn comm_model_charges_latency() {
        let comm = CommModel { latency_s: 1.0, bandwidth_bytes_per_s: 1e9 };
        let mut bsp = Bsp::new(vec![(); 2]).with_comm(comm);
        bsp.exchange(|_r, _s| vec![Envelope::new(0, 1u32)], |_r, _s, _in| {});
        assert!(bsp.makespan() >= 1.0, "latency must be charged");
    }

    #[test]
    fn rank_clocks_and_virtual_trace_slices() {
        obs::enable();
        obs::enable_tracing();
        let mut bsp = Bsp::new(vec![0u64; 3]);
        bsp.phase("rc_probe_compute");
        bsp.run(|r, s| *s = r as u64);
        bsp.phase("rc_probe_exchange");
        bsp.exchange(
            |r, _s| vec![Envelope::new((r + 1) % 3, vec![0u8; 64])],
            |_r, s, inbox: Vec<(usize, Vec<u8>)>| *s += inbox.len() as u64,
        );
        obs::disable_tracing();
        obs::disable();

        let clocks = bsp.rank_clocks();
        assert_eq!(clocks.len(), 3);
        for c in clocks {
            assert!(c.compute_secs > 0.0, "per-rank compute must accumulate");
            assert!(c.comm_secs > 0.0, "per-rank comm must accumulate");
            // The ring shift is symmetric: everyone sends and receives one
            // 64-byte payload.
            assert!(c.bytes_sent > 0);
            assert_eq!(c.bytes_sent, c.bytes_received);
        }

        // The virtual timeline carries one compute slice per rank for the
        // run, one produce + one consume compute slice and one comm slice
        // per rank for the exchange. Filter by this test's phase names:
        // other tests in the binary may trace concurrently.
        let trace = obs::take_trace();
        let (mut compute, mut comm) = (0usize, 0usize);
        let mut tracks = std::collections::BTreeSet::new();
        for e in trace.virtual_slices() {
            if let obs::trace::Event::Virtual { track, name, cat, .. } = &e.event {
                if !name.starts_with("rc_probe_") {
                    continue;
                }
                tracks.insert(*track);
                match cat.as_str() {
                    "compute" => compute += 1,
                    "comm" => comm += 1,
                    other => panic!("unexpected category {other:?}"),
                }
            }
        }
        assert_eq!(tracks.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(comm, 3, "one comm slice per rank for the exchange");
        assert_eq!(compute, 9, "run (3) + exchange produce (3) + consume (3)");
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn bad_destination_panics() {
        let mut bsp = Bsp::new(vec![(); 2]);
        bsp.exchange(|_r, _s| vec![Envelope::new(7, 0u32)], |_r, _s, _in| {});
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates_sequential() {
        // Failure injection: a crashing rank program must surface, not be
        // swallowed by the engine.
        let mut bsp = Bsp::new(vec![(); 3]);
        bsp.run(|r, _s| {
            if r == 1 {
                panic!("injected rank failure");
            }
        });
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates_threaded() {
        let mut bsp = Bsp::new(vec![(); 3]).with_mode(ExecMode::Threaded);
        bsp.exchange(
            |r, _s| {
                if r == 2 {
                    panic!("injected rank failure");
                }
                Vec::<Envelope<u32>>::new()
            },
            |_r, _s, _in| {},
        );
    }
}
