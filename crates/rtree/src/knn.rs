//! Best-first k-nearest-neighbour search.
//!
//! Not used by μDBSCAN itself, but a standard R-tree capability that the
//! workspace exposes for the classic DBSCAN parameter-selection
//! heuristic: plot the sorted k-dist graph (distance to the k-th
//! neighbour) and pick ε at its knee (Ester et al. 1996 §4.2). See
//! [`RTree::kth_neighbor_dist`].
//!
//! Runs on the same MINDIST heap (`traversal::Candidate`) as the
//! best-first ε-range query; point-layout leaves compute exact point
//! distances straight from the column block instead of materialising a
//! degenerate MBR per entry.

use crate::node::{LeafData, Node};
use crate::traversal::Candidate;
use crate::tree::RTree;
use std::collections::BinaryHeap;

impl RTree {
    /// The `k` items nearest to `query` (ties broken arbitrarily),
    /// returned as `(item, distance)` sorted by ascending distance.
    /// Returns fewer than `k` pairs when the tree is smaller than `k`.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<(u32, f64)> {
        debug_assert_eq!(query.len(), self.dim());
        let mut out = Vec::with_capacity(k);
        let Some(root) = self.root else { return out };
        if k == 0 {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(Candidate::node(self.nodes[root as usize].mbr().min_dist_sq(query), root));
        while let Some(c) = heap.pop() {
            match c.item {
                Some(item) => {
                    out.push((item, c.dist_sq.sqrt()));
                    if out.len() == k {
                        break;
                    }
                }
                None => match &self.nodes[c.node as usize] {
                    Node::Internal { children, .. } => {
                        for &ch in children {
                            heap.push(Candidate::node(
                                self.nodes[ch as usize].mbr().min_dist_sq(query),
                                ch,
                            ));
                        }
                    }
                    Node::Leaf { data: LeafData::Boxes(entries), .. } => {
                        for e in entries {
                            heap.push(Candidate::item(e.mbr.min_dist_sq(query), c.node, e.item));
                        }
                    }
                    Node::Leaf { data: LeafData::Points(block), .. } => {
                        for i in 0..block.len() {
                            heap.push(Candidate::item(
                                block.dist_sq_to(i, query),
                                c.node,
                                block.item(i),
                            ));
                        }
                    }
                },
            }
        }
        out
    }

    /// Distance from `query` to its `k`-th nearest item (1-indexed;
    /// `k = 1` is the nearest). `None` when the tree holds fewer than `k`
    /// items. This is the quantity of the k-dist graph used to choose ε.
    pub fn kth_neighbor_dist(&self, query: &[f64], k: usize) -> Option<f64> {
        let nn = self.knn(query, k);
        if nn.len() < k {
            None
        } else {
            Some(nn[k - 1].1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::dist_euclidean;

    fn tree_and_points() -> (RTree, Vec<Vec<f64>>) {
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(vec![i as f64, j as f64 * 1.3]);
            }
        }
        let mut t = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        (t, pts)
    }

    fn brute_knn(pts: &[Vec<f64>], q: &[f64], k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = pts.iter().map(|p| dist_euclidean(p, q)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    #[test]
    fn knn_matches_brute_force() {
        let (t, pts) = tree_and_points();
        for q in [vec![0.0, 0.0], vec![9.7, 13.1], vec![25.0, -3.0]] {
            for k in [1usize, 5, 17] {
                let got: Vec<f64> = t.knn(&q, k).into_iter().map(|(_, d)| d).collect();
                let want = brute_knn(&pts, &q, k);
                assert_eq!(got.len(), k);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-9, "{g} vs {w} (q={q:?}, k={k})");
                }
                // Ascending order.
                assert!(got.windows(2).all(|w| w[0] <= w[1] + 1e-12));
            }
        }
    }

    #[test]
    fn knn_on_bulk_loaded_point_leaves() {
        // Bulk-loaded trees use the column-block leaf layout; results must
        // match brute force there too.
        let pts: Vec<Vec<f64>> = (0..300u32)
            .map(|i| {
                let h = |k: u32| {
                    let x = i.wrapping_mul(2654435761).wrapping_add(k.wrapping_mul(40503));
                    (x % 1000) as f64 / 10.0
                };
                vec![h(1), h(2), h(3)]
            })
            .collect();
        let t = RTree::bulk_load_points(
            3,
            crate::RTreeConfig::default(),
            pts.iter().enumerate().map(|(i, p)| (i as u32, p.clone())),
        );
        for q in [&pts[0], &pts[157]] {
            let got: Vec<f64> = t.knn(q, 7).into_iter().map(|(_, d)| d).collect();
            let want = brute_knn(&pts, q, 7);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn knn_small_tree_and_edge_cases() {
        let mut t = RTree::new(1);
        assert!(t.knn(&[0.0], 3).is_empty());
        t.insert_point(0, &[1.0]);
        t.insert_point(1, &[5.0]);
        let nn = t.knn(&[0.0], 5);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].0, 0);
        assert!(t.knn(&[0.0], 0).is_empty());
    }

    #[test]
    fn kth_neighbor_dist_for_eps_selection() {
        let (t, pts) = tree_and_points();
        let q = &pts[210];
        // 1st neighbour of a stored point is itself (distance 0).
        assert_eq!(t.kth_neighbor_dist(q, 1), Some(0.0));
        let d5 = t.kth_neighbor_dist(q, 5).unwrap();
        let want = brute_knn(&pts, q, 5)[4];
        assert!((d5 - want).abs() < 1e-9);
        assert_eq!(t.kth_neighbor_dist(q, pts.len() + 1), None);
    }
}
