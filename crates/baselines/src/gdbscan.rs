//! G-DBSCAN — the groups method (Kumar & Reddy, Pattern Recognition 2016).
//!
//! Points are gathered into **groups** of radius ε/2 around greedily
//! chosen *master* points via a linear scan (no spatial index — this is
//! why G-DBSCAN struggles on large low-dimensional data but does fine in
//! high dimension where only a handful of groups form, exactly the
//! behaviour of the paper's Table II). Two facts accelerate DBSCAN:
//!
//! * any two members of one group are strictly within ε of each other, so
//!   a group with `>= MinPts` members is all-core without queries;
//! * the ε-neighbourhood of a point in group `G(m)` only intersects
//!   groups whose master is strictly within `1.5ε` of the point.

use crate::BaselineOutput;
use geom::{dist_sq, within_sq, Dataset, DbscanParams, PointId};
use metrics::{Counters, PhaseTimer, Stopwatch};
use mudbscan::Clustering;
use unionfind::UnionFind;

/// One ε/2-radius group.
#[derive(Debug, Clone)]
struct Group {
    master: PointId,
    members: Vec<PointId>,
}

/// The groups-method DBSCAN.
#[derive(Debug, Clone)]
pub struct GDbscan {
    params: DbscanParams,
}

impl GDbscan {
    /// New instance.
    pub fn new(params: DbscanParams) -> Self {
        Self { params }
    }

    /// Run on `data`.
    pub fn run(&self, data: &Dataset) -> BaselineOutput {
        let eps = self.params.eps;
        let min_pts = self.params.min_pts;
        let half_sq = (eps / 2.0) * (eps / 2.0);
        let reach_sq = (1.5 * eps) * (1.5 * eps);
        let eps_sq = eps * eps;

        let counters = Counters::new();
        let mut phases = PhaseTimer::new();
        let mut sw = Stopwatch::start();
        let n = data.len();
        let _run = obs::span!("gdbscan");

        // Phase 1: group construction by linear scan over masters.
        let ph1 = obs::span!("group_construction");
        let mut groups: Vec<Group> = Vec::new();
        let mut group_of: Vec<u32> = vec![u32::MAX; n];
        for (p, coords) in data.iter() {
            let mut joined = false;
            for (gi, g) in groups.iter_mut().enumerate() {
                counters.count_dists(1);
                if dist_sq(coords, data.point(g.master)) < half_sq {
                    g.members.push(p);
                    group_of[p as usize] = gi as u32;
                    joined = true;
                    break;
                }
            }
            if !joined {
                group_of[p as usize] = groups.len() as u32;
                groups.push(Group { master: p, members: vec![p] });
            }
        }
        drop(ph1);
        phases.add_secs("group_construction", sw.lap());

        // Phase 2: full groups are all-core; union within group.
        let ph2 = obs::span!("group_classification");
        let mut uf = UnionFind::new(n);
        let mut is_core = vec![false; n];
        let mut assigned = vec![false; n];
        // Full-group members are provably core, but unlike μDBSCAN's
        // wndq-cores they still run phase-3 queries: the groups method
        // needs their neighbour sets for the cross-group unions.
        for g in &groups {
            if g.members.len() >= min_pts {
                for &m in &g.members {
                    is_core[m as usize] = true;
                    uf.union(g.master, m);
                    counters.count_union();
                    assigned[m as usize] = true;
                }
            }
        }
        drop(ph2);
        phases.add_secs("group_classification", sw.lap());

        // Phase 3: neighbourhood queries restricted to nearby groups.
        let ph3 = obs::span!("clustering");
        let mut pending: Vec<(PointId, Vec<PointId>)> = Vec::new();
        let mut nbhrs: Vec<PointId> = Vec::new();
        for (p, coords) in data.iter() {
            nbhrs.clear();
            counters.count_range_query();
            for g in &groups {
                counters.count_dists(1);
                if dist_sq(coords, data.point(g.master)) < reach_sq {
                    counters.count_dists(g.members.len() as u64);
                    for &q in &g.members {
                        if within_sq(coords, data.point(q), eps_sq) {
                            nbhrs.push(q);
                        }
                    }
                }
            }
            if nbhrs.len() >= min_pts {
                is_core[p as usize] = true;
                assigned[p as usize] = true;
                for &x in &nbhrs {
                    if is_core[x as usize] {
                        uf.union(x, p);
                        counters.count_union();
                    } else if !assigned[x as usize] {
                        uf.union(p, x);
                        counters.count_union();
                        assigned[x as usize] = true;
                    }
                }
            } else if !assigned[p as usize] {
                let mut attached = false;
                for &x in &nbhrs {
                    if is_core[x as usize] {
                        uf.union(x, p);
                        counters.count_union();
                        assigned[p as usize] = true;
                        attached = true;
                        break;
                    }
                }
                if !attached {
                    pending.push((p, nbhrs.clone()));
                }
            }
        }
        drop(ph3);
        phases.add_secs("clustering", sw.lap());

        // Phase 4: border rescue from stored neighbourhoods.
        let ph4 = obs::span!("post_processing");
        for (p, nb) in &pending {
            if assigned[*p as usize] {
                continue;
            }
            for &q in nb {
                if is_core[q as usize] {
                    uf.union(q, *p);
                    counters.count_union();
                    assigned[*p as usize] = true;
                    break;
                }
            }
        }
        drop(ph4);
        phases.add_secs("post_processing", sw.lap());

        let peak = groups.iter().map(|g| 16 + g.members.capacity() * 4).sum::<usize>()
            + uf.heap_bytes()
            + n * 3 / 8
            + pending.iter().map(|(_, v)| 16 + v.capacity() * 4).sum::<usize>();

        let clustering = Clustering::from_union_find(&mut uf, is_core);
        BaselineOutput { clustering, counters, phases, peak_heap_bytes: peak }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn blob_data() -> Dataset {
        let mut rows = Vec::new();
        let mut s = 123u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (4.0, 4.0)] {
            for _ in 0..40 {
                rows.push(vec![cx + 0.7 * r(), cy + 0.7 * r()]);
            }
        }
        for _ in 0..10 {
            rows.push(vec![8.0 * r(), 8.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn exact_vs_naive() {
        let data = blob_data();
        for (eps, min_pts) in [(0.5, 4), (0.9, 6), (0.25, 2)] {
            let params = DbscanParams::new(eps, min_pts);
            let out = GDbscan::new(params).run(&data);
            let reference = naive_dbscan(&data, &params);
            let rep = check_exact(&out.clustering, &reference, &data, &params);
            assert!(rep.is_exact(), "eps={eps} min_pts={min_pts}: {rep:?}");
        }
    }

    #[test]
    fn groups_bound_masters() {
        // All points identical: exactly one group, all core for small
        // MinPts, one cluster.
        let data = Dataset::from_rows(&vec![vec![2.0, 2.0]; 12]);
        let out = GDbscan::new(DbscanParams::new(1.0, 5)).run(&data);
        assert_eq!(out.clustering.n_clusters, 1);
        assert_eq!(out.clustering.core_count(), 12);
    }

    #[test]
    fn phases_reported() {
        let data = blob_data();
        let out = GDbscan::new(DbscanParams::new(0.5, 4)).run(&data);
        let names: Vec<String> = out.phases.split_up().iter().map(|(n, _, _)| n.clone()).collect();
        assert!(names.contains(&"group_construction".to_string()));
        assert!(names.contains(&"clustering".to_string()));
    }
}
