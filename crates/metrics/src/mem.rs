//! Deep-size memory accounting for Table IV ("peak memory consumption").
//!
//! The paper reports resident-set peaks of four C++ binaries; we account the
//! dominant heap structures of each algorithm explicitly. This is
//! deterministic across allocators and lets the harness enforce a memory
//! *budget*: GridDBSCAN's neighbour-cell explosion at high dimension then
//! surfaces as a clean `MemoryLimit` error, reproducing the paper's
//! "Mem Err" cells instead of actually exhausting the host.

/// Types that can estimate the heap bytes they own (deep size, excluding
/// `size_of::<Self>()` itself).
pub trait MemUsage {
    /// Estimated owned heap bytes.
    fn heap_bytes(&self) -> usize;
}

/// Heap bytes owned by a `Vec` of plain-old-data elements.
#[inline]
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Heap bytes owned by a boxed slice of plain-old-data elements.
#[inline]
pub fn slice_bytes<T>(s: &[T]) -> usize {
    std::mem::size_of_val(s)
}

impl<T> MemUsage for Vec<T> {
    fn heap_bytes(&self) -> usize {
        vec_bytes(self)
    }
}

impl MemUsage for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: MemUsage> MemUsage for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, |v| v.heap_bytes())
    }
}

impl<T: MemUsage> MemUsage for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + (**self).heap_bytes()
    }
}

/// Format a byte count the way the paper's Table IV does (MB / GB).
pub fn human_bytes(bytes: usize) -> String {
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = MB * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.1} MB", b / MB)
    } else {
        format!("{:.1} KB", b / 1024.0)
    }
}

/// A memory budget that structures check against while building; exceeding
/// it reproduces the paper's "Mem Err" outcomes deterministically.
#[derive(Debug, Clone, Copy)]
pub struct MemBudget {
    limit: usize,
}

impl MemBudget {
    /// A budget of `limit` bytes.
    pub fn new(limit: usize) -> Self {
        Self { limit }
    }

    /// Effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self { limit: usize::MAX }
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// `Err` with the offending size when `bytes` exceeds the budget.
    pub fn check(&self, bytes: usize) -> Result<(), MemoryLimitExceeded> {
        if bytes > self.limit {
            Err(MemoryLimitExceeded { needed: bytes, limit: self.limit })
        } else {
            Ok(())
        }
    }
}

/// Raised when a structure would exceed the configured memory budget —
/// the reproduction of the paper's "Mem Err" table cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLimitExceeded {
    /// Bytes the structure would need.
    pub needed: usize,
    /// Configured budget in bytes.
    pub limit: usize,
}

impl std::fmt::Display for MemoryLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory limit exceeded: needs {} but budget is {}",
            human_bytes(self.needed),
            human_bytes(self.limit)
        )
    }
}

impl std::error::Error for MemoryLimitExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_bytes_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
        assert_eq!(v.heap_bytes(), 16 * 8);
    }

    #[test]
    fn slice_bytes_exact() {
        let s = [0u32; 10];
        assert_eq!(slice_bytes(&s), 40);
    }

    #[test]
    fn human_formats() {
        assert_eq!(human_bytes(512), "0.5 KB");
        assert_eq!(human_bytes(150 * 1024 * 1024), "150.0 MB");
        assert_eq!(human_bytes(21 * 1024 * 1024 * 1024), "21.00 GB");
    }

    #[test]
    fn budget_check() {
        let b = MemBudget::new(1000);
        assert!(b.check(1000).is_ok());
        let err = b.check(1001).unwrap_err();
        assert_eq!(err.needed, 1001);
        assert_eq!(err.limit, 1000);
        assert!(err.to_string().contains("memory limit exceeded"));
        assert!(MemBudget::unlimited().check(usize::MAX).is_ok());
    }

    #[test]
    fn nested_mem_usage() {
        let v: Option<Vec<u8>> = Some(Vec::with_capacity(32));
        assert_eq!(v.heap_bytes(), 32);
        let none: Option<Vec<u8>> = None;
        assert_eq!(none.heap_bytes(), 0);
        let s = String::with_capacity(10);
        assert_eq!(s.heap_bytes(), 10);
    }
}
