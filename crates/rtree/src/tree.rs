//! The R-tree structure: ChooseLeaf insertion with Guttman's quadratic
//! split.

use crate::node::{Entry, LeafData, Node, NodeId};
use geom::Mbr;

/// Node-split algorithm used on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Guttman's quadratic split (SIGMOD'84) — the classic default.
    #[default]
    Quadratic,
    /// The R*-tree split (Beckmann et al., SIGMOD'90): margin-minimising
    /// axis choice + overlap-minimising distribution. Lower-overlap trees
    /// on skewed data at some extra construction cost.
    RStar,
}

/// Fan-out configuration. `min_entries <= max_entries / 2` must hold so a
/// split can always produce two valid nodes.
#[derive(Debug, Clone, Copy)]
pub struct RTreeConfig {
    /// Maximum entries/children per node (Guttman's `M`).
    pub max_entries: usize,
    /// Minimum entries/children per node after a split (Guttman's `m`).
    pub min_entries: usize,
    /// Split algorithm on node overflow.
    pub split: SplitStrategy,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self { max_entries: 32, min_entries: 12, split: SplitStrategy::default() }
    }
}

impl RTreeConfig {
    /// Validated constructor (quadratic split).
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        assert!(
            min_entries >= 1 && min_entries <= max_entries / 2,
            "min_entries must be in 1..=max_entries/2"
        );
        Self { max_entries, min_entries, split: SplitStrategy::default() }
    }

    /// Select the split algorithm.
    pub fn with_split(mut self, split: SplitStrategy) -> Self {
        self.split = split;
        self
    }
}

/// An R-tree over items identified by `u32`, each bounded by an [`Mbr`].
#[derive(Debug, Clone)]
pub struct RTree {
    dim: usize,
    cfg: RTreeConfig,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<NodeId>,
    pub(crate) len: usize,
    pub(crate) height: usize, // number of levels; leaf-only tree has height 1
}

impl RTree {
    /// Empty tree for `dim`-dimensional data with default fan-out.
    pub fn new(dim: usize) -> Self {
        Self::with_config(dim, RTreeConfig::default())
    }

    /// Empty tree with explicit fan-out configuration.
    pub fn with_config(dim: usize, cfg: RTreeConfig) -> Self {
        assert!(dim > 0);
        Self { dim, cfg, nodes: Vec::new(), root: None, len: 0, height: 0 }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no item is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Data dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tree height in levels (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of arena nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Fan-out configuration.
    pub fn config(&self) -> RTreeConfig {
        self.cfg
    }

    /// Bounding box of the whole tree (`None` when empty).
    pub fn mbr(&self) -> Option<&Mbr> {
        self.root.map(|r| self.nodes[r as usize].mbr())
    }

    /// Capacity of a leaf's storage block: one slot beyond `max_entries`
    /// so the overflowing entry fits in place before the split runs.
    pub(crate) fn leaf_cap(&self) -> usize {
        self.cfg.max_entries + 1
    }

    /// Insert an item with its bounding box.
    pub fn insert(&mut self, entry: Entry) {
        assert_eq!(entry.mbr.dim(), self.dim, "entry dimensionality mismatch");
        match self.root {
            None => {
                let mbr = entry.mbr.clone();
                let data = LeafData::from_entries(self.dim, self.leaf_cap(), vec![entry]);
                let id = self.push_node(Node::Leaf { mbr, data });
                self.root = Some(id);
                self.height = 1;
            }
            Some(root) => {
                if let Some(sibling) = self.insert_rec(root, entry) {
                    let mbr =
                        self.nodes[root as usize].mbr().merged(self.nodes[sibling as usize].mbr());
                    let new_root =
                        self.push_node(Node::Internal { mbr, children: vec![root, sibling] });
                    self.root = Some(new_root);
                    self.height += 1;
                }
            }
        }
        self.len += 1;
    }

    /// Insert a point item (degenerate MBR).
    pub fn insert_point(&mut self, item: u32, coords: &[f64]) {
        self.insert(Entry::point(item, coords));
    }

    /// Remove the point item `item` stored at `coords` (degenerate MBR).
    /// Returns `true` when the item was found and removed.
    pub fn remove_point(&mut self, item: u32, coords: &[f64]) -> bool {
        assert_eq!(coords.len(), self.dim, "point dimensionality mismatch");
        self.remove(item, &Mbr::point(coords))
    }

    /// Remove the item `item` whose stored bounding box equals `mbr`.
    /// Returns `true` when the item was found and removed.
    ///
    /// The descent only visits subtrees whose box contains `mbr`; on the
    /// unwind every ancestor's cached MBR is recomputed exactly from its
    /// surviving children, so boxes *shrink* — queries after a removal
    /// pay no dead-volume penalty. Nodes emptied by the removal are
    /// unlinked from their parent (their arena slots are reclaimed only
    /// when the tree empties entirely). No minimum-fan-out reinsertion
    /// is performed: underfull nodes are legal in this tree, deletion
    /// merely trades a little query balance for O(height) cost.
    pub fn remove(&mut self, item: u32, mbr: &Mbr) -> bool {
        assert_eq!(mbr.dim(), self.dim, "entry dimensionality mismatch");
        let Some(root) = self.root else { return false };
        match self.remove_rec(root, item, mbr) {
            Removal::NotFound => false,
            Removal::Removed { empty } => {
                self.len -= 1;
                if empty {
                    // Last item gone: reset to the pristine empty state
                    // and reclaim the whole arena.
                    self.nodes.clear();
                    self.root = None;
                    self.height = 0;
                }
                true
            }
        }
    }

    fn remove_rec(&mut self, node: NodeId, item: u32, mbr: &Mbr) -> Removal {
        if self.nodes[node as usize].is_leaf() {
            let Node::Leaf { data, .. } = &mut self.nodes[node as usize] else { unreachable!() };
            let Some(i) =
                (0..data.len()).find(|&i| data.item(i) == item && data.entry_mbr(i) == *mbr)
            else {
                return Removal::NotFound;
            };
            data.remove(i);
            if data.is_empty() {
                return Removal::Removed { empty: true };
            }
            let shrunk = leaf_mbr(data);
            let Node::Leaf { mbr: m, .. } = &mut self.nodes[node as usize] else { unreachable!() };
            *m = shrunk;
            return Removal::Removed { empty: false };
        }

        let Node::Internal { children, .. } = &self.nodes[node as usize] else { unreachable!() };
        let kids = children.clone();
        for (k, &c) in kids.iter().enumerate() {
            if !self.nodes[c as usize].mbr().contains(mbr) {
                continue;
            }
            let Removal::Removed { empty } = self.remove_rec(c, item, mbr) else { continue };
            let Node::Internal { children, .. } = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            if empty {
                children.remove(k);
            }
            if children.is_empty() {
                return Removal::Removed { empty: true };
            }
            let remaining = children.clone();
            let shrunk = self.mbr_of_children(&remaining);
            let Node::Internal { mbr: m, .. } = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            *m = shrunk;
            return Removal::Removed { empty: false };
        }
        Removal::NotFound
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        id
    }

    /// Recursive insert; returns the id of a new sibling when `node` split.
    fn insert_rec(&mut self, node: NodeId, entry: Entry) -> Option<NodeId> {
        if self.nodes[node as usize].is_leaf() {
            let max = self.cfg.max_entries;
            let dim = self.dim;
            let Node::Leaf { mbr, data } = &mut self.nodes[node as usize] else { unreachable!() };
            mbr.merge(&entry.mbr);
            data.push(entry, dim);
            if data.len() > max {
                return Some(self.split_leaf(node));
            }
            return None;
        }

        let child = self.choose_subtree(node, &entry.mbr);
        let entry_mbr = entry.mbr.clone();
        let split = self.insert_rec(child, entry);
        // The chosen child's box grew by at most `entry_mbr`; growing our own
        // box by the same amount keeps it covering.
        let Node::Internal { mbr, children } = &mut self.nodes[node as usize] else {
            unreachable!()
        };
        mbr.merge(&entry_mbr);
        if let Some(sibling) = split {
            children.push(sibling);
            let sib_mbr = self.nodes[sibling as usize].mbr().clone();
            let Node::Internal { mbr, children } = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            mbr.merge(&sib_mbr);
            if children.len() > self.cfg.max_entries {
                return Some(self.split_internal(node));
            }
        }
        None
    }

    /// Guttman's ChooseLeaf criterion: least enlargement, ties by smallest
    /// volume, then smallest margin.
    fn choose_subtree(&self, node: NodeId, mbr: &Mbr) -> NodeId {
        let Node::Internal { children, .. } = &self.nodes[node as usize] else {
            unreachable!("choose_subtree on leaf")
        };
        let mut best = children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &c in children {
            let cm = self.nodes[c as usize].mbr();
            let key = (cm.enlargement(mbr), cm.volume(), cm.margin());
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    fn split_leaf(&mut self, node: NodeId) -> NodeId {
        let (dim, cap) = (self.dim, self.leaf_cap());
        let Node::Leaf { data, .. } = &mut self.nodes[node as usize] else { unreachable!() };
        let taken = std::mem::replace(data, LeafData::Boxes(Vec::new())).into_entries(dim);
        let boxes: Vec<&Mbr> = taken.iter().map(|e| &e.mbr).collect();
        let (ga, gb) = self.partition_boxes(&boxes);
        let (mut ea, mut eb) = (Vec::with_capacity(ga.len()), Vec::with_capacity(gb.len()));
        let mut assign = vec![false; taken.len()];
        for &i in &gb {
            assign[i] = true;
        }
        for (i, e) in taken.into_iter().enumerate() {
            if assign[i] {
                eb.push(e);
            } else {
                ea.push(e);
            }
        }
        let mbr_a = mbr_of_entries(&ea);
        let mbr_b = mbr_of_entries(&eb);
        self.nodes[node as usize] =
            Node::Leaf { mbr: mbr_a, data: LeafData::from_entries(dim, cap, ea) };
        self.push_node(Node::Leaf { mbr: mbr_b, data: LeafData::from_entries(dim, cap, eb) })
    }

    fn split_internal(&mut self, node: NodeId) -> NodeId {
        let Node::Internal { children, .. } = &mut self.nodes[node as usize] else {
            unreachable!()
        };
        let taken = std::mem::take(children);
        let boxes: Vec<Mbr> = taken.iter().map(|&c| self.nodes[c as usize].mbr().clone()).collect();
        let refs: Vec<&Mbr> = boxes.iter().collect();
        let (_, gb) = self.partition_boxes(&refs);
        let mut assign = vec![false; taken.len()];
        for &i in &gb {
            assign[i] = true;
        }
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        for (i, c) in taken.into_iter().enumerate() {
            if assign[i] {
                cb.push(c);
            } else {
                ca.push(c);
            }
        }
        let mbr_a = self.mbr_of_children(&ca);
        let mbr_b = self.mbr_of_children(&cb);
        self.nodes[node as usize] = Node::Internal { mbr: mbr_a, children: ca };
        self.push_node(Node::Internal { mbr: mbr_b, children: cb })
    }

    /// Dispatch to the configured split algorithm.
    fn partition_boxes(&self, boxes: &[&Mbr]) -> (Vec<usize>, Vec<usize>) {
        match self.cfg.split {
            SplitStrategy::Quadratic => quadratic_partition(boxes, self.cfg.min_entries),
            SplitStrategy::RStar => crate::rstar::rstar_partition(boxes, self.cfg.min_entries),
        }
    }

    fn mbr_of_children(&self, children: &[NodeId]) -> Mbr {
        let mut it = children.iter();
        let first = *it.next().expect("split group cannot be empty");
        let mut m = self.nodes[first as usize].mbr().clone();
        for &c in it {
            m.merge(self.nodes[c as usize].mbr());
        }
        m
    }

    /// Visit every `(item, mbr)` pair (arbitrary order). Point-layout
    /// leaves materialise a degenerate box per entry into a reused buffer.
    pub fn for_each_item(&self, mut f: impl FnMut(u32, &Mbr)) {
        let Some(root) = self.root else { return };
        let mut buf = vec![0.0; self.dim];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n as usize] {
                Node::Internal { children, .. } => stack.extend_from_slice(children),
                Node::Leaf { data: LeafData::Boxes(entries), .. } => {
                    for e in entries {
                        f(e.item, &e.mbr);
                    }
                }
                Node::Leaf { data: LeafData::Points(block), .. } => {
                    for i in 0..block.len() {
                        block.write_point(i, &mut buf);
                        f(block.item(i), &Mbr::point(&buf));
                    }
                }
            }
        }
    }

    /// Estimated heap footprint in bytes (arena plus per-node vectors).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.nodes.iter().map(|n| n.heap_bytes()).sum::<usize>()
    }

    /// Internal consistency check (used by tests): every node's cached MBR
    /// covers its contents, fan-out bounds hold, item count matches.
    pub fn check_invariants(&self) {
        let Some(root) = self.root else {
            assert_eq!(self.len, 0);
            return;
        };
        let mut items = 0usize;
        let mut stack = vec![(root, 1usize)];
        let mut leaf_depth = None;
        while let Some((n, depth)) = stack.pop() {
            let node = &self.nodes[n as usize];
            if n != root {
                assert!(
                    node.fanout() <= self.cfg.max_entries,
                    "node {n} overfull: {}",
                    node.fanout()
                );
            }
            match node {
                Node::Internal { mbr, children } => {
                    assert!(!children.is_empty());
                    for &c in children {
                        assert!(
                            mbr.contains(self.nodes[c as usize].mbr()),
                            "parent MBR does not cover child"
                        );
                        stack.push((c, depth + 1));
                    }
                }
                Node::Leaf { mbr, data } => {
                    match leaf_depth {
                        None => leaf_depth = Some(depth),
                        Some(d) => assert_eq!(d, depth, "leaves at different depths"),
                    }
                    for i in 0..data.len() {
                        assert!(mbr.contains(&data.entry_mbr(i)), "leaf MBR does not cover entry");
                        items += 1;
                    }
                    if let LeafData::Points(block) = data {
                        assert!(
                            block.capacity() > self.cfg.max_entries,
                            "point leaf block too small to absorb an overflow entry"
                        );
                    }
                }
            }
        }
        assert_eq!(items, self.len, "item count mismatch");
        assert_eq!(leaf_depth, Some(self.height), "height mismatch");
    }
}

/// Outcome of a recursive removal below one node.
enum Removal {
    NotFound,
    Removed {
        /// The child subtree is now empty and must be unlinked.
        empty: bool,
    },
}

/// Exact bounding box of a non-empty leaf's contents.
fn leaf_mbr(data: &LeafData) -> Mbr {
    match data {
        LeafData::Boxes(entries) => mbr_of_entries(entries),
        LeafData::Points(block) => block.mbr().expect("leaf cannot be empty here"),
    }
}

fn mbr_of_entries(entries: &[Entry]) -> Mbr {
    let mut it = entries.iter();
    let mut m = it.next().expect("split group cannot be empty").mbr.clone();
    for e in it {
        m.merge(&e.mbr);
    }
    m
}

/// Guttman's quadratic split over a set of boxes: returns the two index
/// groups. Each group has at least `min_entries` members (assuming
/// `boxes.len() > 2 * min_entries`, which holds when splitting an overfull
/// node).
pub(crate) fn quadratic_partition(boxes: &[&Mbr], min_entries: usize) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    debug_assert!(n >= 2);
    // PickSeeds: the pair wasting the most volume (margin as tie-breaker so
    // degenerate point boxes still pick the farthest pair).
    let (mut sa, mut sb) = (0, 1);
    let mut worst = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for i in 0..n {
        for j in i + 1..n {
            let merged = boxes[i].merged(boxes[j]);
            let key = (merged.volume() - boxes[i].volume() - boxes[j].volume(), merged.margin());
            if key > worst {
                worst = key;
                sa = i;
                sb = j;
            }
        }
    }
    let mut ga = vec![sa];
    let mut gb = vec![sb];
    let mut mbr_a = boxes[sa].clone();
    let mut mbr_b = boxes[sb].clone();
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != sa && i != sb).collect();

    while !rest.is_empty() {
        // If one group needs every remaining box to reach min_entries,
        // assign them all.
        if ga.len() + rest.len() == min_entries {
            ga.append(&mut rest);
            break;
        }
        if gb.len() + rest.len() == min_entries {
            gb.append(&mut rest);
            break;
        }
        // PickNext: the box with maximal preference difference.
        let mut best_k = 0;
        let mut best_diff = f64::NEG_INFINITY;
        for (k, &i) in rest.iter().enumerate() {
            let da = mbr_a.enlargement(boxes[i]) + mbr_a.merged(boxes[i]).margin() - mbr_a.margin();
            let db = mbr_b.enlargement(boxes[i]) + mbr_b.merged(boxes[i]).margin() - mbr_b.margin();
            let diff = (da - db).abs();
            if diff > best_diff {
                best_diff = diff;
                best_k = k;
            }
        }
        let i = rest.swap_remove(best_k);
        let da = (mbr_a.enlargement(boxes[i]), mbr_a.merged(boxes[i]).margin());
        let db = (mbr_b.enlargement(boxes[i]), mbr_b.merged(boxes[i]).margin());
        if da <= db {
            ga.push(i);
            mbr_a.merge(boxes[i]);
        } else {
            gb.push(i);
            mbr_b.merge(boxes[i]);
        }
    }
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(nx: usize, ny: usize) -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                v.push(vec![i as f64, j as f64]);
            }
        }
        v
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new(3);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.mbr().is_none());
        t.check_invariants();
    }

    #[test]
    fn insert_grows_and_stays_valid() {
        let mut t = RTree::new(2);
        for (i, p) in grid_points(20, 20).iter().enumerate() {
            t.insert_point(i as u32, p);
            if i % 37 == 0 {
                t.check_invariants();
            }
        }
        assert_eq!(t.len(), 400);
        assert!(t.height() >= 2);
        t.check_invariants();
        let m = t.mbr().unwrap();
        assert_eq!(m.lo(), &[0.0, 0.0]);
        assert_eq!(m.hi(), &[19.0, 19.0]);
    }

    #[test]
    fn for_each_item_visits_all_once() {
        let mut t = RTree::new(2);
        for (i, p) in grid_points(9, 9).iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        let mut seen = [false; 81];
        t.for_each_item(|item, mbr| {
            assert!(!seen[item as usize]);
            seen[item as usize] = true;
            assert_eq!(mbr.lo(), mbr.hi());
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn quadratic_partition_respects_min() {
        let pts: Vec<Mbr> = (0..10).map(|i| Mbr::point(&[i as f64, 0.0])).collect();
        let refs: Vec<&Mbr> = pts.iter().collect();
        let (ga, gb) = quadratic_partition(&refs, 4);
        assert!(ga.len() >= 4 && gb.len() >= 4);
        assert_eq!(ga.len() + gb.len(), 10);
        let mut all: Vec<usize> = ga.iter().chain(gb.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_points_are_kept() {
        let mut t = RTree::new(2);
        for i in 0..100u32 {
            t.insert_point(i, &[1.0, 1.0]);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants();
    }

    #[test]
    fn collinear_points_split_fine() {
        // Zero-volume MBRs exercise the margin tie-breakers.
        let mut t = RTree::with_config(1, RTreeConfig::new(4, 2));
        for i in 0..64u32 {
            t.insert_point(i, &[i as f64]);
        }
        t.check_invariants();
        assert!(t.height() >= 3);
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn config_validation() {
        RTreeConfig::new(8, 5);
    }

    #[test]
    fn remove_point_shrinks_and_stays_valid() {
        let mut t = RTree::with_config(2, RTreeConfig::new(4, 2));
        let pts = grid_points(8, 8);
        for (i, p) in pts.iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        t.check_invariants();
        // Remove the whole x == 7 boundary column: the root MBR must
        // shrink to x <= 6 (exact recompute, not a stale cover).
        for (i, p) in pts.iter().enumerate() {
            if p[0] == 7.0 {
                assert!(t.remove_point(i as u32, p));
            }
        }
        assert_eq!(t.len(), 56);
        t.check_invariants();
        let m = t.mbr().unwrap().clone();
        assert_eq!(m.hi(), &[6.0, 7.0], "root MBR did not shrink: {m:?}");
        // Removing again (or a never-inserted item) is a no-op.
        assert!(!t.remove_point(63, &[7.0, 7.0]));
        assert!(!t.remove_point(999, &[3.0, 3.0]));
        assert_eq!(t.len(), 56);
    }

    #[test]
    fn remove_to_empty_then_reinsert() {
        let mut t = RTree::with_config(2, RTreeConfig::new(4, 2));
        let pts = grid_points(5, 5);
        for (i, p) in pts.iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        for (i, p) in pts.iter().enumerate() {
            assert!(t.remove_point(i as u32, p));
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.mbr().is_none());
        assert_eq!(t.node_count(), 0, "empty tree must reclaim its arena");
        for (i, p) in pts.iter().enumerate() {
            t.insert_point(i as u32, p);
        }
        assert_eq!(t.len(), 25);
        t.check_invariants();
    }

    #[test]
    fn interleaved_insert_remove_queries_match_linear_scan() {
        // Deterministic pseudo-random interleaving of inserts and removals;
        // after every phase, sphere queries must match a linear scan over
        // the live set.
        let mut t = RTree::with_config(2, RTreeConfig::new(8, 4));
        let coords = |i: u32| {
            let h = |k: u32| {
                let x = i.wrapping_mul(2654435761).wrapping_add(k.wrapping_mul(913));
                (x % 997) as f64 / 31.0
            };
            vec![h(1), h(2)]
        };
        let mut live: Vec<u32> = Vec::new();
        for i in 0..400u32 {
            t.insert_point(i, &coords(i));
            live.push(i);
            // Every third insert, remove a pseudo-random live point.
            if i % 3 == 2 {
                let k = (i.wrapping_mul(48271) as usize) % live.len();
                let victim = live.swap_remove(k);
                assert!(t.remove_point(victim, &coords(victim)));
            }
            if i % 53 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), live.len());
        for q in [&coords(7), &coords(123), &coords(399)] {
            for r in [2.0, 9.0] {
                let mut got = t.sphere_neighbors(q, r);
                got.sort_unstable();
                let r_sq = r * r;
                let mut want: Vec<u32> = live
                    .iter()
                    .copied()
                    .filter(|&p| {
                        let c = coords(p);
                        let d = (c[0] - q[0]).powi(2) + (c[1] - q[1]).powi(2);
                        d < r_sq
                    })
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn remove_duplicate_coordinate_points_one_at_a_time() {
        let mut t = RTree::new(2);
        for i in 0..20u32 {
            t.insert_point(i, &[1.0, 1.0]);
        }
        for i in (0..20u32).rev() {
            assert!(t.remove_point(i, &[1.0, 1.0]));
            assert!(!t.remove_point(i, &[1.0, 1.0]), "id {i} removed twice");
            t.check_invariants();
        }
        assert!(t.is_empty());
    }

    #[test]
    fn rstar_split_tree_is_valid_and_queries_agree() {
        let pts: Vec<Vec<f64>> = (0..600u32)
            .map(|i| {
                let h = |k: u32| {
                    let x = i.wrapping_mul(2654435761).wrapping_add(k.wrapping_mul(97));
                    (x % 1000) as f64 / 10.0
                };
                vec![h(1), h(2)]
            })
            .collect();
        let mut quad = RTree::with_config(2, RTreeConfig::new(8, 4));
        let mut rstar =
            RTree::with_config(2, RTreeConfig::new(8, 4).with_split(SplitStrategy::RStar));
        for (i, p) in pts.iter().enumerate() {
            quad.insert_point(i as u32, p);
            rstar.insert_point(i as u32, p);
        }
        quad.check_invariants();
        rstar.check_invariants();
        for q in [&pts[0], &pts[123], &pts[599]] {
            for r in [3.0, 11.0] {
                let mut a = quad.sphere_neighbors(q, r);
                let mut b = rstar.sphere_neighbors(q, r);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }
}
