//! Table VI reproduction: μDBSCAN-D runtime with increasing core counts
//! (32 → 64 → 128) on the two largest workloads.
//!
//! ```text
//! cargo run --release -p bench --bin repro_table6
//! ```

use bench::{banner, secs, SEED};
use geom::DbscanParams;
use metrics::Table;
use mudbscan::prelude::{RunDetails, Runner};

const PAPER: &[(&str, &str, &str, &str)] = &[
    ("FOF500M3D", "4229.81", "2641.03", "1800.62"),
    ("MPAGD800M3D", "1881.2", "977.85", "624.44"),
];

fn main() {
    banner(
        "Table VI — μDBSCAN-D with increasing processing cores",
        "runtime (s) at p = 32 / 64 / 128 on FOF500M3D and MPAGD800M3D",
        "analogues at 120K points; virtual makespans",
    );

    let workloads = [
        ("FOF500M3D", data::galaxy(120_000, 3, SEED), DbscanParams::new(1.2, 5)),
        ("MPAGD800M3D", data::galaxy(120_000, 3, SEED + 1), DbscanParams::new(0.6, 5)),
    ];

    let mut ours = Table::new(&["dataset", "p=32", "p=64", "p=128", "32→128 speedup"]);
    for (name, dataset, params) in &workloads {
        eprintln!("[{name}] ...");
        let mut runtimes = Vec::new();
        let mut clusters = None;
        for p in [32usize, 64, 128] {
            let out = Runner::new(*params).ranks(p).run(dataset).expect("distributed run");
            match clusters {
                None => clusters = Some(out.clustering.n_clusters),
                Some(k) => assert_eq!(k, out.clustering.n_clusters, "{name} p={p}"),
            }
            match out.details {
                RunDetails::Distributed { runtime_secs, .. } => runtimes.push(runtime_secs),
                ref other => panic!("expected Distributed details, got {other:?}"),
            }
        }
        ours.row(&[
            name.to_string(),
            secs(runtimes[0]),
            secs(runtimes[1]),
            secs(runtimes[2]),
            format!("{:.2}x", runtimes[0] / runtimes[2]),
        ]);
    }

    println!("measured:");
    ours.print();

    println!("\npaper values (multiple MPI ranks per node on the 32-node cluster):");
    let mut paper = Table::new(&["dataset", "p=32", "p=64", "p=128"]);
    for &(name, a, b, c) in PAPER {
        paper.row_str(&[name, a, b, c]);
    }
    paper.print();

    println!("\nshape check: runtime keeps dropping from 32 to 128 ranks");
    println!("(paper: 2.3x over the 32→128 span on both datasets).");
}
