//! Instrumentation must be behaviour-neutral: the `obs` spans and
//! counters woven through the hot paths only read clocks and write to
//! their own maps, so clustering output with collection **on** must be
//! bit-identical to output with collection **off**, for every algorithm
//! family the trajectory file covers.

use conformance::{DatasetSpec, Family};
use dist::{DistConfig, MuDbscanD};
use geom::{Dataset, DbscanParams};
use mudbscan::{Clustering, MuDbscan, ParMuDbscan};

fn seeded_dataset() -> Dataset {
    let spec = DatasetSpec { family: Family::Blobs, n: 400, dim: 3, seed: 2019 };
    Dataset::from_rows(&spec.rows())
}

/// The obs collector is process-global and the test harness runs tests on
/// parallel threads: serialize every enable/disable window.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` with obs disabled, with aggregate collection enabled, and with
/// aggregates + event tracing enabled, asserting identical clusterings in
/// all three arms. Leaves the global collector disabled and drained.
fn assert_neutral(label: &str, f: impl Fn() -> Clustering) {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::disable_tracing();
    obs::disable();
    obs::reset();
    let plain = f();

    obs::reset();
    obs::enable();
    let instrumented = f();
    obs::disable();
    let report = obs::take_report();

    // Third arm: everything on at once — aggregates, histograms (span
    // durations and hot-path samples feed them automatically) and the
    // event-trace ring. Must still be bit-identical.
    obs::reset();
    obs::enable();
    obs::enable_tracing();
    let traced = f();
    obs::disable_tracing();
    obs::disable();
    let trace = obs::take_trace();
    obs::reset();

    assert_eq!(plain, instrumented, "{label}: clustering changed when obs collection was enabled");
    assert_eq!(plain.n_clusters, instrumented.n_clusters, "{label}: cluster count drifted");
    assert!(!report.spans.is_empty(), "{label}: the instrumented run must actually record spans");
    assert_eq!(plain, traced, "{label}: clustering changed when event tracing was enabled");
    assert!(!trace.is_empty(), "{label}: the traced run must actually record events");
    trace.validate().unwrap_or_else(|e| panic!("{label}: emitted trace is inconsistent: {e}"));
    let span_paths: Vec<&str> = report.spans.iter().map(|(k, _)| k.as_str()).collect();
    assert!(
        report.spans.iter().any(|(_, s)| !s.dur_ns.is_empty()),
        "{label}: span durations must feed a histogram; spans: {span_paths:?}"
    );
}

#[test]
fn sequential_mudbscan_is_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    assert_neutral("mudbscan_seq", || MuDbscan::from_params(params).run(&data).clustering);
}

#[test]
fn parallel_mudbscan_is_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    for threads in [1, 4] {
        assert_neutral(&format!("par_mudbscan_t{threads}"), || {
            ParMuDbscan::from_params(params, threads).run(&data).clustering
        });
    }
}

#[test]
fn distributed_mudbscan_is_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    for ranks in [1, 4] {
        assert_neutral(&format!("mudbscan_d_p{ranks}"), || {
            MuDbscanD::from_params(params, DistConfig::new(ranks))
                .run(&data)
                .expect("dist run")
                .clustering
        });
    }
}

/// The live-telemetry layer must be observation-only: draining windowed
/// snapshots off the global collector *while the algorithm runs* — the
/// way `serve_top` or a metrics endpoint would — must perturb neither
/// the clustering nor the drained aggregates. The quiet arm and the
/// polled arm run the same deterministic workload, so their counters
/// and (count-valued) histograms must drain bit-identically; and the
/// poller's merged windows can never exceed the cumulative stream they
/// partition.
#[test]
fn live_snapshot_polling_is_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    let run = || MuDbscan::from_params(params).run(&data).clustering;

    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::disable_tracing();

    // Quiet arm: instrumented, nobody polling.
    obs::reset();
    obs::enable();
    let quiet = run();
    obs::disable();
    let quiet_report = obs::take_report();

    // Polled arm: the same run with a racing poller draining windowed
    // snapshots and rendering the Prometheus exposition the whole time.
    obs::reset();
    obs::enable();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (polled, windows) = std::thread::scope(|s| {
        let poller = s.spawn(|| {
            let mut cursor = obs::WindowCursor::new();
            let mut series = obs::LiveSeries::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let snap = cursor.poll_global();
                let _ = obs::render_prom(&snap.window, "mudbscan");
                series.push(snap.window);
                std::thread::yield_now();
            }
            // One final drain after the run stops: on a one-core host
            // the scheduler may never run this thread mid-workload, so
            // without it the series could legitimately be empty.
            let snap = cursor.poll_global();
            let _ = obs::render_prom(&snap.window, "mudbscan");
            series.push(snap.window);
            series
        });
        let polled = run();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (polled, poller.join().expect("poller thread"))
    });
    obs::disable();
    let polled_report = obs::take_report();
    obs::reset();

    assert_eq!(quiet, polled, "clustering changed under live snapshot polling");
    assert_eq!(
        quiet_report.counts, polled_report.counts,
        "drained counters perturbed by mid-run polling"
    );
    assert_eq!(
        quiet_report.hists, polled_report.hists,
        "drained histograms perturbed by mid-run polling"
    );
    assert!(!windows.is_empty(), "the poller must actually drain windows");
    // Window algebra: the deltas partition a monotone prefix of the
    // cumulative stream — merging them can reproduce at most what the
    // final drain saw.
    let merged = windows.merged();
    for (k, v) in &merged.counts {
        assert!(
            polled_report.count(k) >= *v,
            "merged windows over-counted {k}: {v} > {}",
            polled_report.count(k)
        );
    }
}

#[test]
fn baselines_are_obs_neutral() {
    let data = seeded_dataset();
    let params = DbscanParams::new(0.6, 5);
    assert_neutral("rdbscan", || baselines::RDbscan::new(params).run(&data).clustering);
    assert_neutral("gdbscan", || baselines::GDbscan::new(params).run(&data).clustering);
    assert_neutral("griddbscan", || {
        baselines::GridDbscan::new(params).run(&data).expect("within budget").clustering
    });
}
