//! Property test: one OPTICS ordering must reproduce the exact DBSCAN
//! clustering at arbitrary extraction radii ε′ ≤ ε — the defining
//! property of the ordering.

use geom::{Dataset, DbscanParams};
use mudbscan::{check_exact, naive_dbscan};
use optics::{extract_dbscan, Optics};
use proptest::prelude::*;

fn clustered(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec(prop::collection::vec(-6.0..6.0f64, dim), 1..4),
        prop::collection::vec((0usize..4, prop::collection::vec(-0.8..0.8f64, dim)), 10..90),
        prop::collection::vec(prop::collection::vec(-8.0..8.0f64, dim), 0..10),
    )
        .prop_map(|(centers, offsets, background)| {
            let mut rows = Vec::new();
            for (ci, off) in offsets {
                let c = &centers[ci % centers.len()];
                rows.push(c.iter().zip(&off).map(|(a, b)| a + b).collect());
            }
            rows.extend(background);
            rows
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn extraction_is_exact_at_any_radius(
        rows in clustered(2),
        eps in 0.5..2.5f64,
        min_pts in 2usize..7,
        frac in 0.3..1.0f64,
    ) {
        let data = Dataset::from_rows(&rows);
        let out = Optics::from_params(DbscanParams::new(eps, min_pts)).run(&data);
        let eps_prime = eps * frac;
        let got = extract_dbscan(&out, &data, eps_prime);
        let params_prime = DbscanParams::new(eps_prime, min_pts);
        let want = naive_dbscan(&data, &params_prime);
        let rep = check_exact(&got, &want, &data, &params_prime);
        prop_assert!(rep.is_exact(), "eps'={eps_prime}: {rep:?}");
    }

    #[test]
    fn extraction_is_exact_in_3d(
        rows in clustered(3),
        eps in 0.6..2.5f64,
        min_pts in 2usize..6,
    ) {
        let data = Dataset::from_rows(&rows);
        let out = Optics::from_params(DbscanParams::new(eps, min_pts)).run(&data);
        let got = extract_dbscan(&out, &data, eps);
        let params = DbscanParams::new(eps, min_pts);
        let want = naive_dbscan(&data, &params);
        let rep = check_exact(&got, &want, &data, &params);
        prop_assert!(rep.is_exact(), "{rep:?}");
    }
}
