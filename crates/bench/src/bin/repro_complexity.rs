//! Table I support: empirical validation of the O(n log m + n log r)
//! complexity claim — runtime normalised by n·(log m + log r) should stay
//! roughly constant as n grows, and clearly flatter than t/n (which would
//! be constant only for a linear algorithm).
//!
//! ```text
//! cargo run --release -p bench --bin repro_complexity
//! ```

use bench::{banner, timed, SEED};
use metrics::Table;
use mudbscan::prelude::*;

fn main() {
    banner(
        "Table I — complexity validation",
        "μDBSCAN average time O(n log m + n log r); step-wise costs of Table I",
        "galaxy analogue, n doubling from 12.5K to 100K",
    );

    let params = DbscanParams::new(0.8, 5);
    let runner = Runner::new(params);
    let mut t = Table::new(&[
        "n",
        "time (s)",
        "m (MCs)",
        "r (avg/MC)",
        "t / n·(log m + log r) [ns]",
        "t/n [µs]",
    ]);
    let mut normalised = Vec::new();

    for &n in &[12_500usize, 25_000, 50_000, 100_000] {
        let dataset = data::galaxy(n, 3, SEED);
        eprintln!("[n={n}] ...");
        let (out, secs) = timed(|| runner.run(&dataset).expect("sequential run"));
        let (mc_count, avg_mc_size) = match out.details {
            RunDetails::Sequential { mc_count, avg_mc_size, .. } => (mc_count, avg_mc_size),
            ref other => panic!("expected Sequential details, got {other:?}"),
        };
        let m = mc_count as f64;
        let r = avg_mc_size.max(1.0);
        let denom = n as f64 * (m.log2() + r.log2());
        let norm_ns = secs / denom * 1e9;
        normalised.push(norm_ns);
        t.row(&[
            n.to_string(),
            format!("{secs:.3}"),
            mc_count.to_string(),
            format!("{avg_mc_size:.1}"),
            format!("{norm_ns:.2}"),
            format!("{:.2}", secs / n as f64 * 1e6),
        ]);
    }

    println!("measured:");
    t.print();

    let min = normalised.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = normalised.iter().cloned().fold(0.0f64, f64::max);
    println!("\nnormalised-cost spread over an 8x growth in n: {:.2}x", max / min);
    println!("(a spread close to 1 supports the O(n log m + n log r) claim; an");
    println!("O(n²) algorithm would show an 8x spread in t/n over this range)");
}
