//! Determinism of the obs histograms at the conformance level.
//!
//! The histogram layer promises *exact, order-independent merges*: every
//! per-thread recording drains into the same fixed bucket layout, so the
//! final buckets (and therefore every reported percentile) must be
//! bit-identical no matter how work was interleaved. Three pins:
//!
//! 1. concurrent per-thread recording of a fixed sample multiset equals
//!    sequential recording of the same samples;
//! 2. sequential `MuDbscan` and `ParMuDbscan` t=1 on the sequential build
//!    path produce identical query-cost histograms (the histogram-level
//!    extension of `seq_and_par_t1_counters_agree`);
//! 3. `ParMuDbscan` at t ∈ {1, 2, 4} produces identical `query/*`
//!    histograms on a promotion-free dataset, where the step-3 query set
//!    is thread-count-invariant by construction.
//!
//! (`postproc/node_visits` is deliberately excluded from pin 3: the
//! post-processing aux queries' execution depends on the union order,
//! which is interleaving-dependent at t > 1.)

use conformance::{DatasetSpec, FAMILIES};
use geom::{Dataset, DbscanParams};
use mcs::BuildOptions;
use mudbscan::{MuDbscan, ParMuDbscan};
use obs::Histogram;

/// The obs collector is process-global and the test harness runs tests on
/// parallel threads: serialize every enable/disable window.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` in a fresh enabled window (caller must hold `OBS_LOCK`) and
/// return the drained histograms.
fn hists_of(f: impl FnOnce()) -> Vec<(String, Histogram)> {
    obs::disable_tracing();
    obs::disable();
    obs::reset();
    obs::enable();
    f();
    obs::disable();
    obs::take_report().hists
}

fn hist<'a>(hists: &'a [(String, Histogram)], key: &str) -> &'a Histogram {
    &hists.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("missing hist {key}")).1
}

fn hist_opt<'a>(hists: &'a [(String, Histogram)], key: &str) -> Option<&'a Histogram> {
    hists.iter().find(|(k, _)| k == key).map(|(_, h)| h)
}

#[test]
fn threaded_recording_matches_sequential_recording() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A spread of magnitudes crossing many octaves, recorded twice: once
    // sequentially, once split over 8 threads in racy order.
    let samples: Vec<u64> = (0..4000u64).map(|i| (i * i * 2654435761) % 1_000_003 + 1).collect();

    let seq = hists_of(|| {
        for &v in &samples {
            obs::record_hist("pin/threaded_vs_seq", v);
        }
    });

    let par = hists_of(|| {
        std::thread::scope(|scope| {
            for chunk in samples.chunks(samples.len().div_ceil(8)) {
                scope.spawn(move || {
                    for &v in chunk {
                        obs::record_hist("pin/threaded_vs_seq", v);
                    }
                });
            }
        });
    });

    let (a, b) = (hist(&seq, "pin/threaded_vs_seq"), hist(&par, "pin/threaded_vs_seq"));
    assert_eq!(a, b, "concurrent merge drifted from sequential recording");
    assert_eq!(a.count(), samples.len() as u64);
    for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
        assert_eq!(a.percentile(q), b.percentile(q));
    }
}

#[test]
fn seq_and_par_t1_histograms_agree() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for family in FAMILIES {
        let spec = DatasetSpec { family, n: 300, dim: 3, seed: 2019 };
        let data = Dataset::from_rows(&spec.rows());
        let params = DbscanParams::new(0.6, 5);

        let seq = hists_of(|| {
            MuDbscan::from_params(params).run(&data);
        });
        // `with_options(BuildOptions::default())` puts t=1 on the
        // sequential build path, making the whole pipeline step-for-step
        // comparable to `MuDbscan`.
        let par = hists_of(|| {
            ParMuDbscan::from_params(params, 1).with_options(BuildOptions::default()).run(&data);
        });

        let label = family.as_str();
        for key in
            ["query/node_visits", "query/candidates", "query/leaf_evals", "rtree/bulk_load_entries"]
        {
            assert_eq!(
                hist(&seq, key),
                hist(&par, key),
                "{label}: histogram {key} drifted between seq and par t1"
            );
        }
        // Post-processing aux queries only run when deferred points exist,
        // so the key may legitimately be absent — but seq and par t1 must
        // agree on that too.
        assert_eq!(
            hist_opt(&seq, "postproc/node_visits"),
            hist_opt(&par, "postproc/node_visits"),
            "{label}: histogram postproc/node_visits drifted between seq and par t1"
        );
    }
}

/// A 2-d grid with 0.45 spacing at ε = 0.6: axis neighbours are within ε,
/// diagonals (≈0.636) are not, and **no** point other than itself lies
/// within ε/2 = 0.3 — so the step-3 dynamic wndq promotion rule can never
/// fire and the saved-query set is identical for every thread count.
fn promotion_free_grid() -> Dataset {
    let mut rows = Vec::new();
    for i in 0..18 {
        for j in 0..18 {
            rows.push(vec![0.45 * i as f64, 0.45 * j as f64]);
        }
    }
    Dataset::from_rows(&rows)
}

#[test]
fn par_query_histograms_identical_across_thread_counts() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let data = promotion_free_grid();
    let params = DbscanParams::new(0.6, 5);

    let runs: Vec<(usize, Vec<(String, Histogram)>)> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let h = hists_of(|| {
                ParMuDbscan::from_params(params, threads).run(&data);
            });
            (threads, h)
        })
        .collect();

    let (_, base) = &runs[0];
    for (threads, h) in &runs[1..] {
        for key in
            ["query/node_visits", "query/candidates", "query/leaf_evals", "rtree/bulk_load_entries"]
        {
            let (a, b) = (hist(base, key), hist(h, key));
            assert_eq!(a, b, "t={threads}: histogram {key} drifted from t=1");
            assert!(a.count() > 0, "{key} must have samples");
        }
    }
}
