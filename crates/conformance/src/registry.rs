//! The registry of every exact DBSCAN implementation in the workspace.
//!
//! Each entry wraps one concrete configuration behind the [`ExactDbscan`]
//! trait so the differential harness can run them uniformly. The goal is
//! coverage of *configurations*, not just algorithms: the sequential
//! μDBSCAN appears once per ablation-knob combination, the parallel
//! variant once per thread count, and the distributed simulator once per
//! rank count, because each of those choices takes different code paths
//! (wndq promotion, border claiming, halo merge) that have historically
//! been where exactness bugs hide.
//!
//! All μDBSCAN families are constructed through
//! [`mudbscan::prelude::Runner`]; only the non-μDBSCAN baselines
//! (R-tree, G-, Grid-DBSCAN) call their own constructors.

use baselines::{GDbscan, GridDbscan, RDbscan};
use geom::{Dataset, DbscanParams};
use metrics::mem::MemBudget;
use mudbscan::prelude::{BuildOptions, Family, Runner};
use mudbscan::Clustering;

/// An exact DBSCAN implementation under one fixed configuration.
///
/// `run` returns `Err` only when the implementation declines the input by
/// design (e.g. GridDBSCAN's memory budget at high dimension); the harness
/// records such cases as skips, never as disagreements.
pub trait ExactDbscan: Sync {
    /// Stable identifier used in failure artifacts and reports.
    fn name(&self) -> &'static str;
    /// Cluster `data` under `params`.
    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String>;
}

/// Any μDBSCAN family, via the facade: `configure` turns the fresh
/// per-run `Runner::new(params)` into this entry's configuration.
struct Facade {
    name: &'static str,
    configure: fn(Runner) -> Runner,
}

impl ExactDbscan for Facade {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        (self.configure)(Runner::new(*params))
            .run(data)
            .map(|out| out.clustering)
            .map_err(|e| e.to_string())
    }
}

struct RBaseline;

impl ExactDbscan for RBaseline {
    fn name(&self) -> &'static str {
        "rdbscan"
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        Ok(RDbscan::new(*params).run(data).clustering)
    }
}

struct GBaseline;

impl ExactDbscan for GBaseline {
    fn name(&self) -> &'static str {
        "gdbscan"
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        Ok(GDbscan::new(*params).run(data).clustering)
    }
}

struct GridBaseline;

impl ExactDbscan for GridBaseline {
    fn name(&self) -> &'static str {
        "grid-dbscan"
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        // The grid baseline's neighbour-cell lists grow ~(2⌈√d⌉+1)^d; under
        // its default 4 GB budget a d=8 case still enumerates hundreds of
        // thousands of offsets before finishing, which would dominate the
        // whole suite. A 256 KB structure budget keeps it a full
        // participant through d≈5 and turns higher dimensions into the
        // paper's "Mem Err" outcome, which the harness records as a skip.
        GridDbscan::new(*params)
            .with_budget(MemBudget::new(256 << 10))
            .run(data)
            .map(|out| out.clustering)
            .map_err(|e| e.to_string())
    }
}

fn seq_opts(two_eps_deferral: bool, str_aux: bool) -> BuildOptions {
    BuildOptions { two_eps_deferral, str_aux, ..BuildOptions::default() }
}

/// Every registered implementation/configuration.
pub fn registry() -> Vec<Box<dyn ExactDbscan>> {
    vec![
        // Sequential μDBSCAN: the 2×2 algorithm-knob grid with default
        // build options...
        Box::new(Facade { name: "mu-seq", configure: |r| r }),
        Box::new(Facade {
            name: "mu-seq/no-promotion",
            configure: |r| r.disable_dynamic_promotion(true),
        }),
        Box::new(Facade {
            name: "mu-seq/no-mc-skip",
            configure: |r| r.disable_post_core_mc_skip(true),
        }),
        Box::new(Facade {
            name: "mu-seq/no-promotion/no-mc-skip",
            configure: |r| r.disable_dynamic_promotion(true).disable_post_core_mc_skip(true),
        }),
        // ...plus the two build-stage ablations, which change the MC
        // decomposition itself and therefore every downstream step.
        Box::new(Facade {
            name: "mu-seq/no-2eps-deferral",
            configure: |r| r.options(seq_opts(false, true)),
        }),
        Box::new(Facade {
            name: "mu-seq/inserted-aux",
            configure: |r| r.options(seq_opts(true, false)),
        }),
        // Parallel μDBSCAN across thread counts (1 pins the degenerate
        // single-worker path; 8 usually oversubscribes CI and stresses the
        // border-claim/promotion interleavings). These use the default
        // tiled parallel MC build; the /seq-build entry keeps the
        // sequential-construction combination covered too.
        Box::new(Facade { name: "mu-par/t1", configure: |r| r.family(Family::Parallel) }),
        Box::new(Facade { name: "mu-par/t2", configure: |r| r.threads(2) }),
        Box::new(Facade { name: "mu-par/t4", configure: |r| r.threads(4) }),
        Box::new(Facade { name: "mu-par/t8", configure: |r| r.threads(8) }),
        Box::new(Facade {
            name: "mu-par/t4/seq-build",
            configure: |r| r.threads(4).options(BuildOptions::default()),
        }),
        // Sequential baselines.
        Box::new(RBaseline),
        Box::new(GBaseline),
        Box::new(GridBaseline),
        // μDBSCAN-D across simulated rank counts (1 pins the trivial
        // partition; 2 and 4 exercise halo exchange and the merge replay).
        Box::new(Facade { name: "mu-dist/r1", configure: |r| r.ranks(1) }),
        Box::new(Facade { name: "mu-dist/r2", configure: |r| r.ranks(2) }),
        Box::new(Facade { name: "mu-dist/r4", configure: |r| r.ranks(4) }),
        // The remaining two families of the facade: the incremental
        // algorithm bulk-loaded from the dataset, and DBSCAN extracted
        // from the OPTICS ordering at the generating ε. Both must agree
        // bit-for-bit with everything above.
        Box::new(Facade { name: "mu-stream", configure: |r| r.family(Family::Streaming) }),
        Box::new(Facade { name: "optics-extract", configure: |r| r.family(Family::Optics) }),
        // The serving layer run as a one-shot: every point ingested as a
        // single batch through the writer thread, then drained. The
        // concurrent-epoch behaviour has its own linearizability suite
        // (tests/serve_linearizability.rs); this entry keeps the
        // snapshot-canonicalization path inside the differential sweep.
        Box::new(Facade { name: "mu-serve", configure: |r| r.family(Family::Serving) }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let regs = registry();
        let mut names: Vec<_> = regs.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), regs.len(), "duplicate registry names");
    }

    #[test]
    fn every_entry_runs_on_a_tiny_dataset() {
        let data =
            Dataset::from_rows(&[vec![0.0, 0.0], vec![0.2, 0.0], vec![0.0, 0.2], vec![8.0, 8.0]]);
        let params = DbscanParams::new(0.5, 3);
        let reference = mudbscan::naive_dbscan(&data, &params);
        for imp in registry() {
            let clustering = imp
                .run(&data, &params)
                .unwrap_or_else(|e| panic!("{} declined a 2-d toy input: {e}", imp.name()));
            let report = mudbscan::check_exact(&clustering, &reference, &data, &params);
            assert!(report.is_exact(), "{} inexact on toy input: {report:?}", imp.name());
        }
    }
}
