//! The span collector: a process-global switch, a thread-local span
//! stack, and mutex-protected aggregation maps.
//!
//! Design constraints (in priority order):
//!
//! 1. **Zero-cost when off.** Every entry point loads one relaxed
//!    `AtomicBool` and returns; no allocation, no lock, no clock read.
//!    Library code can therefore stay permanently instrumented.
//! 2. **Behaviour-neutral.** Instrumentation only reads clocks and writes
//!    to its own maps — it never touches algorithm state. The
//!    `conformance` crate pins this with a differential test (identical
//!    clustering with collection on and off).
//! 3. **Thread-safe.** Spans may be opened and dropped on any thread; the
//!    aggregation maps are shared behind a [`Mutex`]. Spans are
//!    *phase-level* (coarse), so the lock is uncontended in practice —
//!    the measured overhead on the repro_table2 workload is recorded in
//!    EXPERIMENTS.md.
//!
//! Hierarchy comes from a thread-local stack of open span names: a span
//! opened while another is open on the *same thread* is charged to the
//! slash-joined path (`"mudbscan/tree_construction/aux_trees"`). Spans
//! opened on freshly spawned worker threads start a new root — worker
//! phases therefore appear as their own top-level paths, which is what
//! the per-rank/per-thread breakdowns want anyway.

use crate::hist::Histogram;
use crate::report::{Report, SpanStat};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The global aggregation state. One mutex guards all four maps: span
/// drops, counter adds, value adds and histogram records are all
/// phase-level (or at most per-query) events.
struct Collector {
    spans: HashMap<String, SpanStat>,
    counts: HashMap<String, u64>,
    values: HashMap<String, f64>,
    hists: HashMap<String, Histogram>,
}

impl Collector {
    fn new() -> Self {
        Self {
            spans: HashMap::new(),
            counts: HashMap::new(),
            values: HashMap::new(),
            hists: HashMap::new(),
        }
    }
}

static COLLECTOR: std::sync::LazyLock<Mutex<Collector>> =
    std::sync::LazyLock::new(|| Mutex::new(Collector::new()));

/// Lock the collector, recovering from poisoning: the maps are only ever
/// mutated by short, panic-free sections, so a poisoned lock (a panic
/// elsewhere while a span guard was live) leaves them consistent. This
/// is what keeps `obs` usable after a `catch_unwind` — see the
/// `unwind_safety` tests.
fn collector() -> MutexGuard<'static, Collector> {
    COLLECTOR.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Turn collection on. Instrumented code starts recording at the next
/// span/record call; spans already open keep their (pre-enable) path.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn collection off. Spans currently open will still record on drop
/// (they captured their start when opened); new ones become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether collection is currently on. Callers that must *build* data to
/// record (format a name, compute a byte count) should check this first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discard all collected data (spans, counts, values, histograms) and
/// any buffered trace events. Open spans will still record on drop.
pub fn reset() {
    let mut c = collector();
    c.spans.clear();
    c.counts.clear();
    c.values.clear();
    c.hists.clear();
    drop(c);
    crate::trace::clear();
}

/// Sorted [`Report`] of the collector's current contents, plus the
/// trace-layer drop counter folded in as `obs/trace_dropped_events`
/// (only when non-zero, so clean runs keep their exact key set).
fn report_of(c: &Collector, dropped: u64) -> Report {
    let mut spans: Vec<(String, SpanStat)> =
        c.spans.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    let mut counts: Vec<(String, u64)> = c.counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
    let mut values: Vec<(String, f64)> = c.values.iter().map(|(k, &v)| (k.clone(), v)).collect();
    let mut hists: Vec<(String, Histogram)> =
        c.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    if dropped > 0 {
        counts.push(("obs/trace_dropped_events".to_string(), dropped));
    }
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    counts.sort_by(|a, b| a.0.cmp(&b.0));
    values.sort_by(|a, b| a.0.cmp(&b.0));
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    Report { spans, counts, values, hists }
}

/// Swap the collected data out into a [`Report`], leaving the collector
/// empty (and draining the trace-layer drop counter). The enabled flag
/// is not changed; the event-trace buffers are separate (see
/// [`crate::trace::take_trace`]). With [`snapshot_report`] this is the
/// "window from the beginning" special case: drain ≡ snapshot + clear.
pub fn take_report() -> Report {
    let mut c = collector();
    let report = report_of(&c, crate::trace::take_dropped());
    c.spans.clear();
    c.counts.clear();
    c.values.clear();
    c.hists.clear();
    report
}

/// Clone the collected data into a [`Report`] **without draining it** —
/// the live-telemetry primitive: a poll observes the cumulative state
/// mid-run and perturbs nothing (neither the collector nor any open
/// span). Successive snapshots are monotone, so
/// [`Report::delta_since`] between them yields exact per-window deltas;
/// a later [`take_report`] still returns the full cumulative state.
pub fn snapshot_report() -> Report {
    report_of(&collector(), crate::trace::dropped_events())
}

/// Add `n` to the named monotone counter. No-op while disabled.
///
/// ```
/// obs::reset();
/// obs::enable();
/// obs::record_count("mc_dense", 3);
/// obs::record_count("mc_dense", 4);
/// obs::disable();
/// assert_eq!(obs::take_report().count("mc_dense"), 7);
/// ```
pub fn record_count(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    *collector().counts.entry(name.to_string()).or_insert(0) += n;
}

/// Add `v` to the named additive value (virtual seconds, ratios, bytes
/// that want to stay fractional). No-op while disabled.
pub fn record_value(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    *collector().values.entry(name.to_string()).or_insert(0.0) += v;
}

/// Record one sample into the named log-bucketed [`Histogram`]
/// (per-query node visits, candidate counts, per-superstep comm bytes).
/// No-op while disabled.
///
/// ```
/// obs::reset();
/// obs::enable();
/// obs::record_hist("query/node_visits", 12);
/// obs::record_hist("query/node_visits", 300);
/// obs::disable();
/// let r = obs::take_report();
/// assert_eq!(r.hist("query/node_visits").unwrap().count(), 2);
/// ```
pub fn record_hist(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    collector().hists.entry(name.to_string()).or_default().record(v);
}

/// An open phase span. Created by [`span`] / the `span!` macro; records
/// its wall-clock duration under its hierarchical path when dropped.
///
/// The guard is intentionally not `Send`: a span must be dropped on the
/// thread that opened it, because the hierarchy lives in a thread-local
/// stack.
#[must_use = "binding to `_` drops the span immediately; use `let _s = span(..)`"]
#[derive(Debug)]
pub struct Span {
    /// `None` when collection was disabled at open time (no-op guard).
    start: Option<Instant>,
    /// Whether a trace begin event was emitted (so the drop emits the
    /// balancing end even if tracing is toggled off mid-span).
    traced: bool,
    /// Marker making the type `!Send` (raw pointers are not `Send`).
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a phase span named `name`, nested under the spans currently open
/// on this thread. See the crate docs for an example.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None, traced: false, _not_send: std::marker::PhantomData };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    let traced = crate::trace::tracing_enabled();
    if traced {
        crate::trace::span_begin(name);
    }
    Span { start: Some(Instant::now()), traced, _not_send: std::marker::PhantomData }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        if self.traced {
            crate::trace::span_end();
        }
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut c = collector();
        let stat = c.spans.entry(path).or_default();
        stat.secs += elapsed.as_secs_f64();
        stat.count += 1;
        stat.dur_ns.record(elapsed.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_support::locked;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = locked();
        reset();
        disable();
        {
            let _s = span("ghost");
            record_count("ghost_count", 5);
            record_value("ghost_value", 1.0);
        }
        let r = take_report();
        assert!(r.spans.is_empty());
        assert!(r.counts.is_empty());
        assert!(r.values.is_empty());
    }

    #[test]
    fn nested_spans_join_paths() {
        let _g = locked();
        reset();
        enable();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        disable();
        let r = take_report();
        assert_eq!(r.span_count("outer"), 1);
        assert_eq!(r.span_count("outer/inner"), 2);
        assert!(r.span_secs("outer") >= r.span_secs("outer/inner"));
    }

    #[test]
    fn spans_from_threads_aggregate() {
        let _g = locked();
        reset();
        enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let _s = span("worker_phase");
                    }
                });
            }
        });
        disable();
        let r = take_report();
        assert_eq!(r.span_count("worker_phase"), 32);
    }

    #[test]
    fn counts_and_values_accumulate() {
        let _g = locked();
        reset();
        enable();
        record_count("c", 1);
        record_count("c", 2);
        record_value("v", 0.5);
        record_value("v", 0.25);
        disable();
        let r = take_report();
        assert_eq!(r.count("c"), 3);
        assert!((r.value("v") - 0.75).abs() < 1e-12);
        // Missing names read as zero.
        assert_eq!(r.count("absent"), 0);
        assert_eq!(r.value("absent"), 0.0);
    }

    #[test]
    fn take_report_drains() {
        let _g = locked();
        reset();
        enable();
        record_count("once", 1);
        disable();
        assert_eq!(take_report().count("once"), 1);
        assert_eq!(take_report().count("once"), 0);
    }

    #[test]
    fn snapshot_report_does_not_drain() {
        let _g = locked();
        reset();
        enable();
        record_count("live", 2);
        record_hist("lat", 40);
        let s1 = snapshot_report();
        record_count("live", 3);
        record_hist("lat", 7);
        let s2 = snapshot_report();
        disable();
        assert_eq!(s1.count("live"), 2);
        assert_eq!(s2.count("live"), 5);
        let w = s2.delta_since(&s1);
        assert_eq!(w.count("live"), 3);
        assert_eq!(w.hist("lat").unwrap().count(), 1);
        // The one-shot drain is unchanged by any number of snapshots.
        assert_eq!(take_report().count("live"), 5);
        assert_eq!(take_report().count("live"), 0);
    }

    #[test]
    fn histograms_accumulate_and_drain() {
        let _g = locked();
        reset();
        enable();
        for v in [1u64, 2, 3, 1000] {
            record_hist("h", v);
        }
        disable();
        record_hist("h", 99); // ignored: disabled
        let r = take_report();
        let h = r.hist("h").expect("histogram recorded");
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
        assert!(take_report().hist("h").is_none(), "take_report drains hists");
    }

    #[test]
    fn span_durations_feed_a_histogram() {
        let _g = locked();
        reset();
        enable();
        for _ in 0..5 {
            let _s = span("timed");
        }
        disable();
        let r = take_report();
        let (_, stat) = r.spans.iter().find(|(p, _)| p == "timed").unwrap();
        assert_eq!(stat.dur_ns.count(), 5);
        assert!(stat.dur_ns.percentile(0.5) <= stat.dur_ns.max());
    }

    /// Satellite: a panic inside a nested span (caught with
    /// `catch_unwind`) must leave the thread-local span stack and the
    /// global collector consistent — later spans get correct
    /// slash-joined paths and no lock stays poisoned.
    #[test]
    fn unwind_through_nested_spans_keeps_state_consistent() {
        let _g = locked();
        reset();
        enable();
        let _outer = crate::span!("outer");
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the expected panic quiet
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _mid = crate::span!("mid");
            let _inner = crate::span!("inner");
            // Take the collector lock mid-panic path: record something,
            // then panic while the guards are live.
            record_count("before_panic", 1);
            panic!("injected");
        }));
        std::panic::set_hook(prev_hook);
        assert!(result.is_err(), "the injected panic must propagate to catch_unwind");

        // The unwound guards popped themselves: a new span nests directly
        // under "outer", and every record call still works (no poison).
        {
            let _after = crate::span!("after");
            record_count("after_panic", 1);
            record_value("after_value", 1.5);
            record_hist("after_hist", 7);
        }
        drop(_outer);
        disable();
        let r = take_report();
        assert_eq!(r.span_count("outer"), 1);
        assert_eq!(r.span_count("outer/mid"), 1, "unwound span still recorded");
        assert_eq!(r.span_count("outer/mid/inner"), 1);
        assert_eq!(r.span_count("outer/after"), 1, "stack must be clean after unwind");
        assert_eq!(r.span_count("after"), 0, "path must still nest under outer");
        assert_eq!(r.count("before_panic"), 1);
        assert_eq!(r.count("after_panic"), 1);
        assert_eq!(r.value("after_value"), 1.5);
        assert_eq!(r.hist("after_hist").unwrap().count(), 1);
    }

    /// A panic on a worker thread (poisoning scenario for plain mutexes)
    /// must not wedge the global collector for other threads.
    #[test]
    fn panic_on_worker_thread_does_not_poison_collector() {
        let _g = locked();
        reset();
        enable();
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the expected panic quiet
        let worker = std::thread::spawn(|| {
            let _s = span("doomed");
            panic!("worker dies with a span open");
        });
        assert!(worker.join().is_err());
        std::panic::set_hook(prev_hook);
        {
            let _s = span("survivor");
        }
        disable();
        let r = take_report();
        assert_eq!(r.span_count("doomed"), 1, "unwound worker span recorded");
        assert_eq!(r.span_count("survivor"), 1);
    }
}
