//! Domain-specific counterexample shrinking.
//!
//! The vendored proptest shim deliberately has no structural shrinking;
//! for clustering counterexamples, row-set minimization against the exact
//! oracle is both simpler and far more effective: almost every interesting
//! disagreement reduces to a handful of points. [`minimize`] is a greedy
//! delta-debugging pass — it tries removing progressively smaller blocks
//! of rows, keeping any removal after which the caller-supplied predicate
//! (typically "some implementation still disagrees with `naive_dbscan`")
//! continues to hold.

/// Minimize `rows` while `still_fails` holds.
///
/// `still_fails` must be true for the input `rows` (the caller found a
/// counterexample); it is re-evaluated — i.e. the candidate is re-clustered
/// and re-checked against the oracle — for every tentative removal, so the
/// result is always itself a genuine counterexample.
pub fn minimize<F>(mut rows: Vec<Vec<f64>>, still_fails: F) -> Vec<Vec<f64>>
where
    F: Fn(&[Vec<f64>]) -> bool,
{
    debug_assert!(still_fails(&rows), "minimize() called on a passing dataset");
    let mut block = (rows.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < rows.len() {
            if rows.len() <= 1 {
                break;
            }
            let end = (i + block).min(rows.len());
            let mut candidate = Vec::with_capacity(rows.len() - (end - i));
            candidate.extend_from_slice(&rows[..i]);
            candidate.extend_from_slice(&rows[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                rows = candidate;
                removed_any = true;
                // Retry the same index: the block that slid into place may
                // also be removable.
            } else {
                i += block;
            }
        }
        if block == 1 && !removed_any {
            return rows;
        }
        if !removed_any {
            block = (block / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f64) -> Vec<f64> {
        vec![v]
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // Predicate: dataset still contains the magic row 42.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| row(i as f64)).collect();
        let min = minimize(rows, |rs| rs.iter().any(|r| r[0] == 42.0));
        assert_eq!(min, vec![row(42.0)]);
    }

    #[test]
    fn shrinks_a_scattered_pair() {
        // Two required rows far apart in the input ordering.
        let rows: Vec<Vec<f64>> = (0..64).map(|i| row(i as f64)).collect();
        let min =
            minimize(rows, |rs| rs.iter().any(|r| r[0] == 3.0) && rs.iter().any(|r| r[0] == 60.0));
        let mut vals: Vec<f64> = min.iter().map(|r| r[0]).collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![3.0, 60.0]);
    }

    #[test]
    fn keeps_everything_when_all_rows_matter() {
        let rows: Vec<Vec<f64>> = (0..7).map(|i| row(i as f64)).collect();
        let min = minimize(rows.clone(), |rs| rs.len() == 7);
        assert_eq!(min, rows);
    }
}
