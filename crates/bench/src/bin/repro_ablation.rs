//! Ablation study of μDBSCAN's design choices (DESIGN.md §7–§8): each
//! knob toggled in isolation on one galaxy analogue, reporting runtime,
//! query counts and micro-cluster statistics. Clustering equality with
//! the default configuration is asserted for every variant.
//!
//! ```text
//! cargo run --release -p bench --bin repro_ablation
//! ```

use bench::{banner, secs, timed, SEED};
use metrics::Table;
use mudbscan::prelude::*;

fn main() {
    banner(
        "Ablations — μDBSCAN design choices",
        "2ε deferral, STR aux build, dynamic promotion, post-core MC skip",
        "galaxy analogue, 60K points, eps=0.8, MinPts=5",
    );

    let dataset = data::galaxy(60_000, 3, SEED);
    let params = DbscanParams::new(0.8, 5);

    struct Variant {
        name: &'static str,
        runner: Runner,
    }
    let base = Runner::new(params);
    let variants = vec![
        Variant { name: "default (paper + MC-skip)", runner: base.clone() },
        Variant {
            name: "no 2ε deferral",
            runner: base
                .clone()
                .options(BuildOptions { two_eps_deferral: false, ..Default::default() }),
        },
        Variant {
            name: "incremental aux R-trees",
            runner: base.clone().options(BuildOptions { str_aux: false, ..Default::default() }),
        },
        Variant {
            name: "no dynamic promotion",
            runner: base.clone().disable_dynamic_promotion(true),
        },
        Variant {
            name: "paper-faithful post-core",
            runner: base.clone().disable_post_core_mc_skip(true),
        },
    ];

    let mut t = Table::new(&[
        "variant",
        "time",
        "vs default",
        "MCs",
        "queries run",
        "% saved",
        "dists (M)",
    ]);
    let mut reference = None;
    let mut base_time = 0.0;
    for v in variants {
        eprintln!("[{}] ...", v.name);
        let (out, elapsed) = timed(|| v.runner.run(&dataset).expect("sequential run"));
        match &reference {
            None => {
                reference = Some(out.clustering.clone());
                base_time = elapsed;
            }
            Some(r) => {
                assert_eq!(&out.clustering, r, "{}: ablation changed the clustering!", v.name)
            }
        }
        let mc_count = match out.details {
            RunDetails::Sequential { mc_count, .. } => mc_count,
            ref other => panic!("expected Sequential details, got {other:?}"),
        };
        t.row(&[
            v.name.to_string(),
            secs(elapsed),
            format!("{:+.1}%", 100.0 * (elapsed - base_time) / base_time),
            mc_count.to_string(),
            out.counters.range_queries().to_string(),
            format!("{:.1}%", out.counters.pct_queries_saved()),
            format!("{:.1}", out.counters.dist_computations() as f64 / 1e6),
        ]);
    }

    println!("measured (every variant produces the identical exact clustering):");
    t.print();
    println!("\nreading guide: the 2ε rule trades construction work for fewer MCs;");
    println!("STR packing beats repeated insertion; dynamic promotion buys extra");
    println!("query savings; the MC-granularity post-core skip (DESIGN.md §8.1)");
    println!("is where this implementation improves on the paper's Algorithm 7.");
}
