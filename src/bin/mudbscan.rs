//! `mudbscan` — command-line DBSCAN clustering.
//!
//! ```text
//! mudbscan --input points.csv --eps 0.5 --min-pts 5 [--algorithm mu]
//!          [--output labels.csv] [--ranks 8] [--threads 4] [--stats]
//! mudbscan --generate galaxy --n 50000 --dim 3 --output points.csv
//! ```
//!
//! Input formats: CSV (one point per row) or the `MUDB` binary format
//! (`data::io`), selected by extension (`.bin` = binary). The output is
//! a CSV with one cluster label per input row (`-1` = noise).

use geom::{Dataset, DbscanParams};
use mudbscan_repro::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: Option<PathBuf>,
    output: Option<PathBuf>,
    eps: f64,
    min_pts: usize,
    algorithm: String,
    ranks: usize,
    threads: usize,
    stats: bool,
    svg: Option<PathBuf>,
    generate: Option<String>,
    n: usize,
    dim: usize,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: mudbscan --input <file.csv|file.bin> --eps <f> --min-pts <k>
         [--algorithm mu|mu-par|mu-dist|r|g|grid|naive]   (default: mu)
         [--output <labels.csv>] [--ranks <p>] [--threads <t>] [--stats]
         [--svg <plot.svg>]   (first two dimensions, 2-d+ data only)
       mudbscan --generate <galaxy|roads|household|kddbio|uniform>
         --n <points> [--dim <d>] [--seed <s>] --output <file.csv|file.bin>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        input: None,
        output: None,
        eps: 0.0,
        min_pts: 0,
        algorithm: "mu".into(),
        ranks: 8,
        threads: 4,
        stats: false,
        svg: None,
        generate: None,
        n: 10_000,
        dim: 3,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--input" => a.input = Some(PathBuf::from(val("--input"))),
            "--output" => a.output = Some(PathBuf::from(val("--output"))),
            "--eps" => a.eps = val("--eps").parse().unwrap_or_else(|_| usage()),
            "--min-pts" => a.min_pts = val("--min-pts").parse().unwrap_or_else(|_| usage()),
            "--algorithm" => a.algorithm = val("--algorithm"),
            "--ranks" => a.ranks = val("--ranks").parse().unwrap_or_else(|_| usage()),
            "--threads" => a.threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--stats" => a.stats = true,
            "--svg" => a.svg = Some(PathBuf::from(val("--svg"))),
            "--generate" => a.generate = Some(val("--generate")),
            "--n" => a.n = val("--n").parse().unwrap_or_else(|_| usage()),
            "--dim" => a.dim = val("--dim").parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    a
}

fn load(path: &std::path::Path) -> std::io::Result<Dataset> {
    if path.extension().is_some_and(|e| e == "bin") {
        data::io::read_bin(path)
    } else {
        data::io::read_csv(path)
    }
}

fn save(d: &Dataset, path: &std::path::Path) -> std::io::Result<()> {
    if path.extension().is_some_and(|e| e == "bin") {
        data::io::write_bin(d, path)
    } else {
        data::io::write_csv(d, path)
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    // Generator mode.
    if let Some(kind) = &args.generate {
        let d = match kind.as_str() {
            "galaxy" => data::galaxy(args.n, args.dim, args.seed),
            "roads" => data::road_network(args.n, args.seed),
            "household" => data::household(args.n, args.seed),
            "kddbio" => data::kddbio(args.n, args.dim, args.seed),
            "uniform" => data::uniform(args.n, args.dim, args.seed),
            other => {
                eprintln!("unknown generator: {other}");
                return ExitCode::from(2);
            }
        };
        let Some(out) = &args.output else {
            eprintln!("--generate requires --output");
            return ExitCode::from(2);
        };
        if let Err(e) = save(&d, out) {
            eprintln!("write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} points of dimension {} to {}", d.len(), d.dim(), out.display());
        return ExitCode::SUCCESS;
    }

    // Clustering mode.
    let Some(input) = &args.input else { usage() };
    if args.eps <= 0.0 || args.min_pts == 0 {
        eprintln!("--eps and --min-pts are required");
        return ExitCode::from(2);
    }
    let dataset = match load(input) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("read failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = dataset.validate_finite() {
        eprintln!("invalid input: {e}");
        return ExitCode::FAILURE;
    }
    let params = DbscanParams::new(args.eps, args.min_pts);
    eprintln!(
        "clustering {} points (dim {}) with {}: eps={}, MinPts={}",
        dataset.len(),
        dataset.dim(),
        args.algorithm,
        args.eps,
        args.min_pts
    );

    let t = std::time::Instant::now();
    let (clustering, extra): (Clustering, String) = match args.algorithm.as_str() {
        "mu" => {
            let out = Runner::new(params).run(&dataset).expect("sequential run");
            let mc_count = match out.details {
                RunDetails::Sequential { mc_count, .. } => mc_count,
                ref other => panic!("expected Sequential details, got {other:?}"),
            };
            let x = format!(
                "micro-clusters: {}, queries saved: {:.1}%",
                mc_count,
                out.counters.pct_queries_saved()
            );
            (out.clustering, x)
        }
        "mu-par" => {
            let out =
                Runner::new(params).threads(args.threads).run(&dataset).expect("parallel run");
            (out.clustering, format!("threads: {}", args.threads))
        }
        "mu-dist" => match Runner::new(params).ranks(args.ranks).run(&dataset) {
            Ok(out) => {
                let (runtime_secs, comm_bytes) = match out.details {
                    RunDetails::Distributed { runtime_secs, comm_bytes, .. } => {
                        (runtime_secs, comm_bytes)
                    }
                    ref other => panic!("expected Distributed details, got {other:?}"),
                };
                let x = format!(
                    "ranks: {}, virtual runtime: {:.3}s, comm: {} KiB",
                    args.ranks,
                    runtime_secs,
                    comm_bytes / 1024
                );
                (out.clustering, x)
            }
            Err(e) => {
                eprintln!("distributed run failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        "r" => (RDbscan::new(params).run(&dataset).clustering, String::new()),
        "g" => (GDbscan::new(params).run(&dataset).clustering, String::new()),
        "grid" => match GridDbscan::new(params).run(&dataset) {
            Ok(out) => (out.clustering, String::new()),
            Err(e) => {
                eprintln!("GridDBSCAN failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        "naive" => (naive_dbscan(&dataset, &params), String::new()),
        other => {
            eprintln!("unknown algorithm: {other}");
            return ExitCode::from(2);
        }
    };
    let elapsed = t.elapsed().as_secs_f64();

    eprintln!(
        "{} clusters, {} core, {} noise in {:.3}s {}",
        clustering.n_clusters,
        clustering.core_count(),
        clustering.noise_count(),
        elapsed,
        if extra.is_empty() { String::new() } else { format!("({extra})") }
    );

    if args.stats {
        let mut sizes = clustering.cluster_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        eprintln!("largest clusters: {:?}", &sizes[..sizes.len().min(10)]);
    }

    if let Some(svg_path) = &args.svg {
        if dataset.dim() >= 2 {
            match data::plot::write_svg_scatter(&dataset, &clustering.labels, svg_path, 900, 600) {
                Ok(()) => eprintln!("plot written to {}", svg_path.display()),
                Err(e) => eprintln!("plot failed: {e}"),
            }
        } else {
            eprintln!("--svg needs at least 2 dimensions");
        }
    }

    if let Some(out_path) = &args.output {
        use std::io::Write;
        let f = match std::fs::File::create(out_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {}: {e}", out_path.display());
                return ExitCode::FAILURE;
            }
        };
        let mut w = std::io::BufWriter::new(f);
        for &l in &clustering.labels {
            let v: i64 = if l == NOISE { -1 } else { l as i64 };
            if writeln!(w, "{v}").is_err() {
                eprintln!("write failed");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("labels written to {}", out_path.display());
    }
    ExitCode::SUCCESS
}
