//! Doc integrity: every relative markdown link in `README.md`,
//! `EXPERIMENTS.md` and `docs/*.md` must resolve to a file that exists
//! in the repository. Renaming or deleting a doc (or a trajectory file
//! like `BENCH_PR7.json`) without updating the pages that reference it
//! fails here — the CI docs job runs this as its link-integrity step.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/bench -> repository root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

fn audited_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md"), root.join("EXPERIMENTS.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs directory") {
        let p = entry.expect("docs entry").path();
        if p.extension().is_some_and(|e| e == "md") {
            files.push(p);
        }
    }
    files
}

/// The target of every markdown link in `text`: inline `[text](target)`
/// links plus reference-style definitions (`[label]: target`). Good
/// enough for this repo's docs, which use no nested parentheses. Fenced
/// code blocks are skipped so `vec[i](x)` in an example is not read as
/// a link.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Reference definition: the line is `[label]: target`.
        let trimmed = line.trim_start();
        if trimmed.starts_with('[') {
            if let Some(close) = trimmed.find("]:") {
                if !trimmed[..close].contains(']') {
                    out.push(trimmed[close + 2..].trim().to_string());
                    continue;
                }
            }
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            out.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
    }
    out
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in audited_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().expect("audited file has a parent");
        for target in link_targets(&text) {
            // `[text](path "title")` → keep the path part only.
            let target = target.split_whitespace().next().unwrap_or("");
            if target.is_empty()
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            checked += 1;
            let path = target.split('#').next().expect("split never yields nothing");
            if !dir.join(path).exists() {
                broken.push(format!("{}: ({target})", file.display()));
            }
        }
    }
    assert!(checked > 0, "the audited pages contain no relative links — parser broken?");
    assert!(broken.is_empty(), "broken intra-repo links:\n{}", broken.join("\n"));
}

#[test]
fn link_parser_handles_fences_and_titles() {
    let text = "see [a](docs/A.md) and [b](B.md#sec)\n```\nnot [a](link.md)\n```\n[c](C.md \"t\")\n[`Ref`]: D.md";
    assert_eq!(link_targets(text), vec!["docs/A.md", "B.md#sec", "C.md \"t\"", "D.md"]);
}
