//! Astronomy scenario: friends-of-friends-style halo finding on a galaxy
//! catalogue (the paper's Millennium-run workloads), run **distributed**
//! with μDBSCAN-D over simulated cluster ranks.
//!
//! ```text
//! cargo run --release --example galaxy_halos
//! ```

use mudbscan_repro::prelude::*;

fn main() {
    let dataset = data::galaxy(60_000, 3, 2019);
    let params = DbscanParams::new(0.8, 5);
    let ranks = 8;

    println!("galaxy halo finding — n={}, dim=3, {} simulated ranks\n", dataset.len(), ranks);

    let out = Runner::new(params).ranks(ranks).run(&dataset).expect("distributed run");
    let (runtime_secs, comm_bytes) = match out.details {
        RunDetails::Distributed { runtime_secs, comm_bytes, .. } => (runtime_secs, comm_bytes),
        ref other => panic!("expected Distributed details, got {other:?}"),
    };

    println!("halos (clusters) found : {}", out.clustering.n_clusters);
    println!("field galaxies (noise) : {}", out.clustering.noise_count());
    println!("virtual runtime        : {runtime_secs:.3}s (partitioning excluded)");
    println!("communication volume   : {} KiB", comm_bytes / 1024);
    println!("queries saved          : {:.1}%", out.counters.pct_queries_saved());

    println!("\nphase makespans:");
    for (name, secs, pct) in out.phases.split_up() {
        println!("  {name:<20} {secs:>8.4}s  {pct:>5.1}%");
    }

    // Halo mass function: histogram of cluster sizes in log-2 bins — the
    // quantity astronomers derive from FOF catalogues.
    let sizes = out.clustering.cluster_sizes();
    let mut bins = [0usize; 16];
    for &s in &sizes {
        let b = (usize::BITS - 1 - s.leading_zeros().min(usize::BITS - 1)) as usize;
        bins[b.min(15)] += 1;
    }
    println!("\nhalo mass function (cluster-size histogram):");
    for (b, &count) in bins.iter().enumerate() {
        if count > 0 {
            let lo = 1usize << b;
            let bar = "#".repeat((count as f64).log2().ceil().max(1.0) as usize);
            println!("  {:>6}–{:<6} {:>5}  {bar}", lo, (lo << 1) - 1, count);
        }
    }

    // Verify against the sequential algorithm (exactness across the
    // distributed merge).
    let seq = Runner::new(params).run(&dataset).expect("sequential run");
    assert_eq!(out.clustering.n_clusters, seq.clustering.n_clusters);
    assert_eq!(out.clustering.is_core, seq.clustering.is_core);
    println!("\ndistributed result equals sequential μDBSCAN ✓");
}
