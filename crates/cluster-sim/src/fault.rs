//! Deterministic fault injection for the BSP engine.
//!
//! A [`FaultPlan`] is a seed-addressed list of faults the engine's router
//! injects while a program runs: fail-stop rank crashes at a given
//! superstep, per-link message drops (retried with backoff by the
//! reliable-delivery layer), duplicated and reordered deliveries, and
//! straggler ranks whose virtual compute time is scaled. Every fault is
//! addressed by the engine's superstep counter, so replaying the same
//! plan against the same program yields the same injected faults and the
//! same integer [`FaultStats`] — CI replays are stable by construction.
//!
//! The delivery layer restores exactly-once in-order semantics: each
//! message carries a `(source, sequence)` tag, duplicates are discarded
//! and reordered inboxes are re-sorted before the consumer sees them, so
//! a program running under a plan whose drops stay within the retry
//! budget observes the *same inbox* as the fault-free run — only the
//! virtual clock (retry backoff, recovery work) differs. Crashes are the
//! exception: the orchestrator must revive the rank via [`Bsp::recover`]
//! before the next superstep.
//!
//! [`Bsp::recover`]: crate::Bsp::recover

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Fail-stop crash: `rank` performs no work at compute superstep
    /// `superstep` and is marked down until recovered. A rank crashes at
    /// most once; crashes scheduled on communicating supersteps never
    /// fire (the driver contract recovers crashes before any barrier).
    Crash {
        /// The rank that fails.
        rank: usize,
        /// The compute superstep (engine step counter) at which it fails.
        superstep: usize,
    },
    /// Every message from `from` to `to` at superstep `superstep` has its
    /// first `attempts` transmissions dropped. If `attempts` exceeds the
    /// retry budget the message is lost (only possible with a crippled
    /// [`RetryConfig`]; the default budget always redelivers).
    Drop {
        /// The communicating superstep the drop applies to.
        superstep: usize,
        /// Source rank of the affected link.
        from: usize,
        /// Destination rank of the affected link.
        to: usize,
        /// Number of transmissions dropped per message on the link.
        attempts: u32,
    },
    /// Every message from `from` to `to` at superstep `superstep` is
    /// delivered twice; the delivery layer discards the extra copy.
    Duplicate {
        /// The communicating superstep the duplication applies to.
        superstep: usize,
        /// Source rank of the affected link.
        from: usize,
        /// Destination rank of the affected link.
        to: usize,
    },
    /// Rank `to`'s inbox at superstep `superstep` arrives in a
    /// deterministically shuffled order; the delivery layer re-sorts it.
    Reorder {
        /// The communicating superstep the reorder applies to.
        superstep: usize,
        /// The destination rank whose inbox is shuffled.
        to: usize,
    },
    /// Rank `rank` computes `slowdown`× slower (virtual-clock skew) on
    /// every superstep.
    Straggler {
        /// The slow rank.
        rank: usize,
        /// Multiplicative compute slowdown (> 1).
        slowdown: f64,
    },
}

/// A deterministic, seed-addressed fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The seed the plan was generated from (also keys the deterministic
    /// reorder shuffle). Replaying the same seed reproduces the plan.
    pub seed: u64,
    /// The injected faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan with the given seed (add faults with [`Self::with`]).
    pub fn new(seed: u64) -> Self {
        Self { seed, faults: Vec::new() }
    }

    /// Append a fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The superstep at which `rank` crashes, if any (first crash wins —
    /// a rank crashes at most once).
    pub fn crash_step(&self, rank: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::Crash { rank: r, superstep } if *r == rank => Some(*superstep),
            _ => None,
        })
    }

    /// Compute slowdown factor for `rank` (1.0 when not a straggler).
    pub fn straggler_factor(&self, rank: usize) -> f64 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::Straggler { rank: r, slowdown } if *r == rank => Some(*slowdown),
                _ => None,
            })
            .unwrap_or(1.0)
    }

    /// Total dropped transmissions per message on link `from → to` at
    /// `superstep`.
    pub fn drop_attempts(&self, superstep: usize, from: usize, to: usize) -> u32 {
        self.faults
            .iter()
            .map(|f| match f {
                Fault::Drop { superstep: s, from: a, to: b, attempts }
                    if *s == superstep && *a == from && *b == to =>
                {
                    *attempts
                }
                _ => 0,
            })
            .sum()
    }

    /// Whether messages on link `from → to` at `superstep` are duplicated.
    pub fn duplicates(&self, superstep: usize, from: usize, to: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::Duplicate { superstep: s, from: a, to: b }
                if *s == superstep && *a == from && *b == to)
        })
    }

    /// Whether rank `to`'s inbox at `superstep` is shuffled.
    pub fn reorders(&self, superstep: usize, to: usize) -> bool {
        self.faults.iter().any(
            |f| matches!(f, Fault::Reorder { superstep: s, to: b } if *s == superstep && *b == to),
        )
    }

    /// Generate a plan from a seed: one fault of every class the program
    /// shape admits, addressed into the given compute and communicating
    /// supersteps. Deterministic — the same `(seed, ranks, steps)` always
    /// yields the same plan. Drop/duplicate/reorder destinations are
    /// biased toward rank 0 (merge trees funnel there) so injected
    /// message faults usually hit a live link.
    pub fn generate(
        seed: u64,
        ranks: usize,
        compute_steps: &[usize],
        exchange_steps: &[usize],
    ) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || splitmix64(&mut state);
        let mut plan = FaultPlan::new(seed);
        let pick = |v: u64, n: usize| (v % n.max(1) as u64) as usize;

        if !compute_steps.is_empty() && next() % 4 != 0 {
            plan.faults.push(Fault::Crash {
                rank: pick(next(), ranks),
                superstep: compute_steps[pick(next(), compute_steps.len())],
            });
        }
        if !exchange_steps.is_empty() {
            let dest = |v: u64, w: u64| if !w.is_multiple_of(4) { 0 } else { pick(v, ranks) };
            if next() % 4 != 0 {
                let (v, w) = (next(), next());
                plan.faults.push(Fault::Drop {
                    superstep: exchange_steps[pick(next(), exchange_steps.len())],
                    from: pick(next(), ranks),
                    to: dest(v, w),
                    attempts: 1 + (next() % 3) as u32,
                });
            }
            if next() % 4 != 0 {
                let (v, w) = (next(), next());
                plan.faults.push(Fault::Duplicate {
                    superstep: exchange_steps[pick(next(), exchange_steps.len())],
                    from: pick(next(), ranks),
                    to: dest(v, w),
                });
            }
            if next() % 4 != 0 {
                let (v, w) = (next(), next());
                plan.faults.push(Fault::Reorder {
                    superstep: exchange_steps[pick(next(), exchange_steps.len())],
                    to: dest(v, w),
                });
            }
        }
        if next() % 2 == 0 {
            plan.faults.push(Fault::Straggler {
                rank: pick(next(), ranks),
                slowdown: 1.25 + (next() % 12) as f64 * 0.25,
            });
        }
        if plan.faults.is_empty() {
            // Never generate a no-op plan: fall back to the mildest fault
            // the program shape admits.
            if let Some(&s) = compute_steps.first() {
                plan.faults.push(Fault::Crash { rank: pick(next(), ranks), superstep: s });
            } else {
                plan.faults.push(Fault::Straggler { rank: pick(next(), ranks), slowdown: 1.5 });
            }
        }
        plan
    }
}

/// Timeout/retry-with-backoff policy of the reliable delivery layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Seconds the sender waits before the first retransmission (also
    /// the failure-detection timeout charged by [`Bsp::recover`]).
    ///
    /// [`Bsp::recover`]: crate::Bsp::recover
    pub timeout_s: f64,
    /// Multiplicative backoff applied to the timeout per retransmission.
    pub backoff: f64,
    /// Retransmissions after the first attempt before the message is
    /// declared lost. The default budget (3) redelivers every generated
    /// drop fault; `0` disables reliability entirely.
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        // 4× the default CommModel latency: a plausible RTO for a
        // cluster interconnect, and small enough that retries perturb
        // the makespan visibly without dominating it.
        Self { timeout_s: 100e-6, backoff: 2.0, max_retries: 3 }
    }
}

impl RetryConfig {
    /// No reliability at all: any dropped transmission loses the message.
    /// Used by negative tests proving the injected faults are real.
    pub fn none() -> Self {
        Self { timeout_s: 0.0, backoff: 1.0, max_retries: 0 }
    }
}

/// Integer fault/recovery counters plus virtual-time overhead totals.
///
/// The integer fields are a pure function of `(program, data, plan,
/// retry config)` — replaying a plan reproduces them exactly (pinned by
/// [`Self::replay_signature`]). The `*_secs` fields carry measured or
/// virtual time and are excluded from the signature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Ranks that crashed.
    pub crashes: u64,
    /// Crashed ranks revived via recovery.
    pub recoveries: u64,
    /// Failed transmissions injected by drop faults.
    pub drops_injected: u64,
    /// Retransmissions performed by the delivery layer.
    pub retries: u64,
    /// Messages lost after exhausting the retry budget.
    pub messages_lost: u64,
    /// Extra copies injected by duplicate faults.
    pub duplicates_injected: u64,
    /// Extra copies discarded by the delivery layer.
    pub duplicates_discarded: u64,
    /// Inboxes shuffled by reorder faults.
    pub reorders_injected: u64,
    /// (superstep, rank) pairs whose compute time was straggler-scaled.
    pub straggled_steps: u64,
    /// Bytes re-requested during crash recovery (halos, checkpoints).
    pub recovery_comm_bytes: u64,
    /// Virtual seconds of retry backoff added to communication.
    pub retry_delay_secs: f64,
    /// Seconds of re-executed compute during recovery.
    pub recovery_compute_secs: f64,
    /// Virtual seconds of recovery communication (detection + transfer).
    pub recovery_comm_secs: f64,
}

impl FaultStats {
    /// The replay-deterministic integer counters, in declaration order.
    /// Two runs of the same program under the same plan and retry config
    /// must produce equal signatures.
    pub fn replay_signature(&self) -> [u64; 10] {
        [
            self.crashes,
            self.recoveries,
            self.drops_injected,
            self.retries,
            self.messages_lost,
            self.duplicates_injected,
            self.duplicates_discarded,
            self.reorders_injected,
            self.straggled_steps,
            self.recovery_comm_bytes,
        ]
    }

    /// True when no fault fired and no recovery work was charged.
    pub fn is_quiet(&self) -> bool {
        self.replay_signature() == [0; 10]
    }
}

/// SplitMix64 step — the workspace's standard offline PRNG kernel.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_non_empty() {
        for seed in 0..200u64 {
            let a = FaultPlan::generate(seed, 4, &[0, 1], &[2]);
            let b = FaultPlan::generate(seed, 4, &[0, 1], &[2]);
            assert_eq!(a, b, "seed {seed}: replay must reproduce the plan");
            assert!(!a.is_empty(), "seed {seed}: generated plan must inject something");
            for f in &a.faults {
                match *f {
                    Fault::Crash { rank, superstep } => {
                        assert!(rank < 4);
                        assert!(superstep <= 1);
                    }
                    Fault::Drop { superstep, from, to, attempts } => {
                        assert_eq!(superstep, 2);
                        assert!(from < 4 && to < 4);
                        assert!((1..=3).contains(&attempts), "generated drops stay redeliverable");
                    }
                    Fault::Duplicate { superstep, from, to } => {
                        assert_eq!(superstep, 2);
                        assert!(from < 4 && to < 4);
                    }
                    Fault::Reorder { superstep, to } => {
                        assert_eq!(superstep, 2);
                        assert!(to < 4);
                    }
                    Fault::Straggler { rank, slowdown } => {
                        assert!(rank < 4);
                        assert!(slowdown > 1.0);
                    }
                }
            }
        }
    }

    #[test]
    fn plan_lookups() {
        let plan = FaultPlan::new(7)
            .with(Fault::Crash { rank: 1, superstep: 0 })
            .with(Fault::Drop { superstep: 2, from: 3, to: 0, attempts: 2 })
            .with(Fault::Duplicate { superstep: 2, from: 2, to: 0 })
            .with(Fault::Reorder { superstep: 2, to: 0 })
            .with(Fault::Straggler { rank: 2, slowdown: 2.0 });
        assert_eq!(plan.crash_step(1), Some(0));
        assert_eq!(plan.crash_step(0), None);
        assert_eq!(plan.drop_attempts(2, 3, 0), 2);
        assert_eq!(plan.drop_attempts(2, 3, 1), 0);
        assert_eq!(plan.drop_attempts(1, 3, 0), 0);
        assert!(plan.duplicates(2, 2, 0));
        assert!(!plan.duplicates(2, 3, 0));
        assert!(plan.reorders(2, 0));
        assert!(!plan.reorders(2, 1));
        assert_eq!(plan.straggler_factor(2), 2.0);
        assert_eq!(plan.straggler_factor(0), 1.0);
    }

    #[test]
    fn stats_signature_excludes_timing() {
        let mut a = FaultStats { retries: 3, ..Default::default() };
        let b = FaultStats { retries: 3, retry_delay_secs: 0.5, ..Default::default() };
        a.recovery_compute_secs = 1.0;
        assert_eq!(a.replay_signature(), b.replay_signature());
        assert!(!a.is_quiet());
        assert!(FaultStats::default().is_quiet());
    }
}
