//! The registry of every exact DBSCAN implementation in the workspace.
//!
//! Each entry wraps one concrete configuration behind the [`ExactDbscan`]
//! trait so the differential harness can run them uniformly. The goal is
//! coverage of *configurations*, not just algorithms: the sequential
//! μDBSCAN appears once per ablation-knob combination, the parallel
//! variant once per thread count, and the distributed simulator once per
//! rank count, because each of those choices takes different code paths
//! (wndq promotion, border claiming, halo merge) that have historically
//! been where exactness bugs hide.

use baselines::{GDbscan, GridDbscan, RDbscan};
use dist::{DistConfig, MuDbscanD};
use geom::{Dataset, DbscanParams};
use mcs::BuildOptions;
use metrics::mem::MemBudget;
use mudbscan::{Clustering, MuDbscan, ParMuDbscan};

/// An exact DBSCAN implementation under one fixed configuration.
///
/// `run` returns `Err` only when the implementation declines the input by
/// design (e.g. GridDBSCAN's memory budget at high dimension); the harness
/// records such cases as skips, never as disagreements.
pub trait ExactDbscan: Sync {
    /// Stable identifier used in failure artifacts and reports.
    fn name(&self) -> &'static str;
    /// Cluster `data` under `params`.
    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String>;
}

/// Sequential μDBSCAN under one ablation-knob / build-option combination.
struct SeqMu {
    name: &'static str,
    disable_dynamic_promotion: bool,
    disable_post_core_mc_skip: bool,
    two_eps_deferral: bool,
    str_aux: bool,
}

impl ExactDbscan for SeqMu {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        let mut algo = MuDbscan::new(*params).with_options(BuildOptions {
            two_eps_deferral: self.two_eps_deferral,
            str_aux: self.str_aux,
            ..BuildOptions::default()
        });
        algo.disable_dynamic_promotion = self.disable_dynamic_promotion;
        algo.disable_post_core_mc_skip = self.disable_post_core_mc_skip;
        Ok(algo.run(data).clustering)
    }
}

/// `ParMuDbscan` at a fixed worker-thread count. `seq_build` pins the
/// sequential micro-cluster construction (the pre-parallel-build path);
/// otherwise the default tiled parallel builder runs.
struct ParMu {
    name: &'static str,
    threads: usize,
    seq_build: bool,
}

impl ExactDbscan for ParMu {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        let mut algo = ParMuDbscan::new(*params, self.threads);
        if self.seq_build {
            algo = algo.with_options(BuildOptions::default());
        }
        Ok(algo.run(data).clustering)
    }
}

/// μDBSCAN-D at a fixed simulated rank count.
struct DistMu {
    name: &'static str,
    ranks: usize,
}

impl ExactDbscan for DistMu {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        MuDbscanD::new(*params, DistConfig::new(self.ranks))
            .run(data)
            .map(|out| out.clustering)
            .map_err(|e| e.to_string())
    }
}

struct RBaseline;

impl ExactDbscan for RBaseline {
    fn name(&self) -> &'static str {
        "rdbscan"
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        Ok(RDbscan::new(*params).run(data).clustering)
    }
}

struct GBaseline;

impl ExactDbscan for GBaseline {
    fn name(&self) -> &'static str {
        "gdbscan"
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        Ok(GDbscan::new(*params).run(data).clustering)
    }
}

struct GridBaseline;

impl ExactDbscan for GridBaseline {
    fn name(&self) -> &'static str {
        "grid-dbscan"
    }

    fn run(&self, data: &Dataset, params: &DbscanParams) -> Result<Clustering, String> {
        // The grid baseline's neighbour-cell lists grow ~(2⌈√d⌉+1)^d; under
        // its default 4 GB budget a d=8 case still enumerates hundreds of
        // thousands of offsets before finishing, which would dominate the
        // whole suite. A 256 KB structure budget keeps it a full
        // participant through d≈5 and turns higher dimensions into the
        // paper's "Mem Err" outcome, which the harness records as a skip.
        GridDbscan::new(*params)
            .with_budget(MemBudget::new(256 << 10))
            .run(data)
            .map(|out| out.clustering)
            .map_err(|e| e.to_string())
    }
}

/// Every registered implementation/configuration.
pub fn registry() -> Vec<Box<dyn ExactDbscan>> {
    vec![
        // Sequential μDBSCAN: the 2×2 algorithm-knob grid with default
        // build options...
        Box::new(SeqMu {
            name: "mu-seq",
            disable_dynamic_promotion: false,
            disable_post_core_mc_skip: false,
            two_eps_deferral: true,
            str_aux: true,
        }),
        Box::new(SeqMu {
            name: "mu-seq/no-promotion",
            disable_dynamic_promotion: true,
            disable_post_core_mc_skip: false,
            two_eps_deferral: true,
            str_aux: true,
        }),
        Box::new(SeqMu {
            name: "mu-seq/no-mc-skip",
            disable_dynamic_promotion: false,
            disable_post_core_mc_skip: true,
            two_eps_deferral: true,
            str_aux: true,
        }),
        Box::new(SeqMu {
            name: "mu-seq/no-promotion/no-mc-skip",
            disable_dynamic_promotion: true,
            disable_post_core_mc_skip: true,
            two_eps_deferral: true,
            str_aux: true,
        }),
        // ...plus the two build-stage ablations, which change the MC
        // decomposition itself and therefore every downstream step.
        Box::new(SeqMu {
            name: "mu-seq/no-2eps-deferral",
            disable_dynamic_promotion: false,
            disable_post_core_mc_skip: false,
            two_eps_deferral: false,
            str_aux: true,
        }),
        Box::new(SeqMu {
            name: "mu-seq/inserted-aux",
            disable_dynamic_promotion: false,
            disable_post_core_mc_skip: false,
            two_eps_deferral: true,
            str_aux: false,
        }),
        // Parallel μDBSCAN across thread counts (1 pins the degenerate
        // single-worker path; 8 usually oversubscribes CI and stresses the
        // border-claim/promotion interleavings). These use the default
        // tiled parallel MC build; the /seq-build entry keeps the
        // sequential-construction combination covered too.
        Box::new(ParMu { name: "mu-par/t1", threads: 1, seq_build: false }),
        Box::new(ParMu { name: "mu-par/t2", threads: 2, seq_build: false }),
        Box::new(ParMu { name: "mu-par/t4", threads: 4, seq_build: false }),
        Box::new(ParMu { name: "mu-par/t8", threads: 8, seq_build: false }),
        Box::new(ParMu { name: "mu-par/t4/seq-build", threads: 4, seq_build: true }),
        // Sequential baselines.
        Box::new(RBaseline),
        Box::new(GBaseline),
        Box::new(GridBaseline),
        // μDBSCAN-D across simulated rank counts (1 pins the trivial
        // partition; 2 and 4 exercise halo exchange and the merge replay).
        Box::new(DistMu { name: "mu-dist/r1", ranks: 1 }),
        Box::new(DistMu { name: "mu-dist/r2", ranks: 2 }),
        Box::new(DistMu { name: "mu-dist/r4", ranks: 4 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let regs = registry();
        let mut names: Vec<_> = regs.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), regs.len(), "duplicate registry names");
    }

    #[test]
    fn every_entry_runs_on_a_tiny_dataset() {
        let data =
            Dataset::from_rows(&[vec![0.0, 0.0], vec![0.2, 0.0], vec![0.0, 0.2], vec![8.0, 8.0]]);
        let params = DbscanParams::new(0.5, 3);
        let reference = mudbscan::naive_dbscan(&data, &params);
        for imp in registry() {
            let clustering = imp
                .run(&data, &params)
                .unwrap_or_else(|e| panic!("{} declined a 2-d toy input: {e}", imp.name()));
            let report = mudbscan::check_exact(&clustering, &reference, &data, &params);
            assert!(report.is_exact(), "{} inexact on toy input: {report:?}", imp.name());
        }
    }
}
