//! Minimal SVG scatter plots of 2-D clusterings — dependency-free output
//! for eyeballing results (`examples/visualize.rs` renders the classic
//! DBSCAN "arbitrary-shaped clusters" picture).

use geom::{Dataset, PointId};
use std::io::{self, Write};
use std::path::Path;

/// Noise label convention used by the plots (`u32::MAX`, matching
/// `mudbscan::NOISE`).
pub const NOISE_LABEL: u32 = u32::MAX;

/// Categorical colour palette (noise is drawn grey regardless).
const PALETTE: &[&str] = &[
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac", "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b", "#e377c2",
];

/// Render the first two coordinates of `data` as an SVG scatter coloured
/// by `labels` (one per point; [`NOISE_LABEL`] = grey). Width/height are
/// in pixels.
pub fn write_svg_scatter(
    data: &Dataset,
    labels: &[u32],
    path: &Path,
    width: u32,
    height: u32,
) -> io::Result<()> {
    assert!(data.dim() >= 2, "need at least 2 dimensions to plot");
    assert_eq!(labels.len(), data.len(), "one label per point");
    let (lo, hi) = data
        .bounding_box()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty dataset"))?;
    let span = |k: usize| (hi[k] - lo[k]).max(1e-12);
    let margin = 10.0;
    let sx = (width as f64 - 2.0 * margin) / span(0);
    let sy = (height as f64 - 2.0 * margin) / span(1);

    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    )?;
    writeln!(w, r#"<rect width="100%" height="100%" fill="white"/>"#)?;
    // Noise first so clusters draw on top.
    for pass in 0..2 {
        for (p, coords) in data.iter() {
            let l = labels[p as usize];
            let is_noise = l == NOISE_LABEL;
            if (pass == 0) != is_noise {
                continue;
            }
            let x = margin + (coords[0] - lo[0]) * sx;
            let y = height as f64 - margin - (coords[1] - lo[1]) * sy;
            let (color, r, op) = if is_noise {
                ("#cccccc", 1.2, 0.8)
            } else {
                (PALETTE[l as usize % PALETTE.len()], 1.8, 0.9)
            };
            writeln!(
                w,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r}" fill="{color}" fill-opacity="{op}"/>"#
            )?;
        }
    }
    writeln!(w, "</svg>")?;
    w.flush()
}

/// Convenience overload taking per-point labels as `(PointId -> u32)`.
pub fn write_svg_scatter_with(
    data: &Dataset,
    label_of: impl Fn(PointId) -> u32,
    path: &Path,
    width: u32,
    height: u32,
) -> io::Result<()> {
    let labels: Vec<u32> = data.ids().map(label_of).collect();
    write_svg_scatter(data, &labels, path, width, height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gaussian_mixture;

    #[test]
    fn writes_valid_svg() {
        let d = gaussian_mixture(200, 2, 3, 1.0, 0.1, 4);
        let labels: Vec<u32> =
            (0..d.len() as u32).map(|i| if i % 7 == 0 { NOISE_LABEL } else { i % 3 }).collect();
        let tmp = std::env::temp_dir().join("mudbscan_plot_test.svg");
        write_svg_scatter(&d, &labels, &tmp, 400, 300).unwrap();
        let content = std::fs::read_to_string(&tmp).unwrap();
        assert!(content.starts_with("<svg"));
        assert!(content.trim_end().ends_with("</svg>"));
        assert_eq!(content.matches("<circle").count(), 200);
        assert!(content.contains("#cccccc"), "noise colour present");
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn closure_overload() {
        let d = gaussian_mixture(50, 3, 2, 1.0, 0.0, 5);
        let tmp = std::env::temp_dir().join("mudbscan_plot_test2.svg");
        write_svg_scatter_with(&d, |p| p % 2, &tmp, 200, 200).unwrap();
        assert!(tmp.exists());
        std::fs::remove_file(&tmp).ok();
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let d = gaussian_mixture(10, 2, 1, 1.0, 0.0, 6);
        let tmp = std::env::temp_dir().join("mudbscan_plot_test3.svg");
        let result = std::panic::catch_unwind(|| {
            write_svg_scatter(&d, &[0u32; 3], &tmp, 100, 100).ok();
        });
        assert!(result.is_err(), "label length mismatch must panic");
    }
}
