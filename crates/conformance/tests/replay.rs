//! Replay previously dumped failure artifacts as regression tests.
//!
//! Every counterexample the differential suite ever wrote to
//! `results/failures/` is re-run here against the current registry; once a
//! bug is fixed its artifact keeps guarding against reintroduction. An
//! empty (or absent) directory passes trivially.

use conformance::harness::replay;
use conformance::{artifact, FailureArtifact};

#[test]
fn all_dumped_artifacts_stay_fixed() {
    let dir = artifact::default_dir();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(_) => return, // no failures ever dumped
    };
    let mut replayed = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("unreadable artifact {}: {e}", path.display()));
        let artifact = FailureArtifact::from_json(&text)
            .unwrap_or_else(|e| panic!("corrupt artifact {}: {e}", path.display()));
        let outcome = replay(&artifact);
        assert!(
            outcome.disagreements.is_empty(),
            "artifact {} (originally failing: [{}]) still disagrees with the oracle: {:?}",
            path.display(),
            artifact.disagreeing.join(", "),
            outcome.disagreements,
        );
        replayed += 1;
    }
    // Informational only; `cargo test` swallows stdout unless it fails.
    println!("replayed {replayed} artifact(s) from {}", dir.display());
}

/// Hand-pinned seeds that once exercised interesting paths (promotion,
/// duplicate-heavy MC centers, distributed halo chains). Fixed forever so
/// a behaviour change here cannot hide behind the randomized suite.
#[test]
fn pinned_seed_regressions() {
    use conformance::{differential, DatasetSpec, Family};
    use geom::DbscanParams;

    let pins: &[(Family, usize, usize, u64, f64, usize)] = &[
        (Family::Blobs, 48, 2, 0xDEAD_BEEF, 0.45, 4),
        (Family::Chains, 56, 3, 0x5EED_0001, 0.30, 3),
        (Family::Duplicates, 40, 1, 0x5EED_0002, 0.15, 5),
        (Family::Uniform, 32, 8, 0x5EED_0003, 1.20, 2),
        (Family::Mixed, 50, 4, 0x5EED_0004, 0.60, 4),
    ];
    for &(family, n, dim, seed, eps, min_pts) in pins {
        let spec = DatasetSpec { family, n, dim, seed };
        let params = DbscanParams::new(eps, min_pts);
        if let Err(msg) = differential("pinned_seed_regressions", &spec, &params) {
            panic!("pinned case {family:?}/{seed:#x}: {msg}");
        }
    }
}
