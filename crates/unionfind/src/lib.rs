#![deny(missing_docs)]

//! Disjoint-set (union–find) structures.
//!
//! DBSCAN cluster formation in this workspace follows Patwary et al.
//! (PDSDBSCAN, SC'12; union–find experiments, SEA'10): clusters are grown by
//! `UNION` operations instead of sequential breadth-first expansion, which
//! is what makes the algorithm order-independent and parallelisable.
//!
//! Two implementations:
//!
//! * [`UnionFind`] — sequential, union by rank + path halving; used by all
//!   sequential algorithms and by each rank of the distributed simulator.
//! * [`ConcurrentUnionFind`] — lock-free atomic-parent version (CAS root
//!   splicing), used by shared-memory baselines and by the merge replay of
//!   the distributed algorithms.
//!
//! ```
//! use unionfind::{ConcurrentUnionFind, UnionFind};
//!
//! let mut uf = UnionFind::new(5);
//! uf.union(0, 1);
//! uf.union(1, 2);
//! assert!(uf.same(0, 2));
//! assert_eq!(uf.count_sets(), 3); // {0,1,2} {3} {4}
//!
//! // The lock-free variant can be driven from many threads.
//! let cuf = ConcurrentUnionFind::new(4);
//! std::thread::scope(|s| {
//!     s.spawn(|| cuf.union(0, 1));
//!     s.spawn(|| cuf.union(2, 3));
//! });
//! assert!(cuf.same(0, 1) && cuf.same(2, 3) && !cuf.same(1, 2));
//! ```

pub mod concurrent;
pub mod sequential;

pub use concurrent::ConcurrentUnionFind;
pub use sequential::UnionFind;
