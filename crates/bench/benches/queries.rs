//! Ablation: query cost of the two-level μR-tree vs a single flat R-tree
//! (DESIGN.md §7.2) and of the reachable-MC filtration (§7.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geom::DbscanParams;
use mcs::{build_micro_clusters, BuildOptions};
use metrics::Counters;
use rtree::{RTree, RTreeConfig, SplitStrategy};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let n = 20_000;
    let eps = 0.8;
    let dataset = data::galaxy(n, 3, 7);
    let _params = DbscanParams::new(eps, 5);

    // Flat R-tree over all points.
    let flat = RTree::bulk_load_points(
        3,
        RTreeConfig::default(),
        dataset.iter().map(|(i, p)| (i, p.to_vec())),
    );

    // μR-tree with reachable lists.
    let counters = Counters::new();
    let mut mur = build_micro_clusters(&dataset, eps, &BuildOptions::default(), &counters);
    mur.compute_reachable(&dataset, &counters);

    let queries: Vec<u32> = (0..200).map(|i| (i * 97) % n as u32).collect();

    let mut g = c.benchmark_group("eps_query");
    g.bench_function(BenchmarkId::new("flat_rtree", n), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                let mut out = Vec::new();
                flat.search_sphere(dataset.point(q), eps, |i| out.push(i));
                acc += out.len();
            }
            black_box(acc)
        })
    });
    g.bench_function(BenchmarkId::new("murtree_reachable", n), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            let mut out = Vec::new();
            for &q in &queries {
                out.clear();
                mur.neighborhood(&dataset, q, &mut out);
                acc += out.len();
            }
            black_box(acc)
        })
    });
    // Ablation: R*-split flat tree vs the quadratic default.
    let rstar = {
        let mut t = RTree::with_config(3, RTreeConfig::default().with_split(SplitStrategy::RStar));
        for (i, p) in dataset.iter() {
            t.insert_point(i, p);
        }
        t
    };
    g.bench_function(BenchmarkId::new("flat_rtree_rstar_split", n), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                let mut out = Vec::new();
                rstar.search_sphere(dataset.point(q), eps, |i| out.push(i));
                acc += out.len();
            }
            black_box(acc)
        })
    });

    // Ablation: search every MC's aux tree instead of only reachable ones.
    g.bench_function(BenchmarkId::new("murtree_no_filter", n), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                let coords = dataset.point(q);
                let eps_sq = eps * eps;
                for mc in &mur.mcs {
                    if mc.mbr.min_dist_sq(coords) < eps_sq {
                        let aux = mc.aux.as_ref().unwrap();
                        let mut out = Vec::new();
                        aux.search_sphere(coords, eps, |i| out.push(i));
                        acc += out.len();
                    }
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_queries
}
criterion_main!(benches);
