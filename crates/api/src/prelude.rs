//! One fluent builder over all six algorithm families.
//!
//! [`Runner`] replaces the four divergent constructor shapes
//! (`new(params)`, `new(params, threads)`, `new(dim, params)`,
//! `new(params, cfg)`) with a single chain:
//!
//! ```
//! use mudbscan::prelude::*;
//!
//! let data = Dataset::from_rows(&[vec![0.0], vec![0.05], vec![0.1], vec![9.0]]);
//! let params = DbscanParams::new(0.2, 3);
//!
//! // Sequential (the default family)…
//! let seq = Runner::new(params).run(&data).unwrap();
//! // …shared-memory parallel…
//! let par = Runner::new(params).threads(4).run(&data).unwrap();
//! // …and distributed over 2 simulated ranks.
//! let dist = Runner::new(params).ranks(2).run(&data).unwrap();
//! assert_eq!(seq.clustering, par.clustering);
//! assert_eq!(seq.clustering, dist.clustering);
//! ```
//!
//! The family is inferred — `.ranks(p)` selects [`Family::Distributed`],
//! otherwise `.threads(t > 1)` selects [`Family::Parallel`], otherwise
//! [`Family::Sequential`] — or forced with [`Runner::family`] (the only
//! way to reach [`Family::Streaming`], [`Family::Optics`], and the
//! batch shape of [`Family::Serving`]). Configuration that a family
//! cannot honour (a fault plan outside `Distributed`, worker threads on
//! the inherently sequential families, ablation knobs outside
//! `Sequential`) is an [`MuDbscanError::InvalidConfig`] at build time,
//! never silently ignored.
//!
//! The sixth family is special: besides the one-shot batch shape above,
//! [`Runner::serve`] starts the long-running concurrent service and
//! hands back a [`ServeHandle`] for batched ingest (inserts, deletions,
//! TTL expiry) and snapshot-isolated queries — see `docs/SERVING.md`.

pub use crate::error::MuDbscanError;
pub use cluster_sim::{Fault, FaultPlan, FaultStats, RankClock, RetryConfig};
pub use dist::{DistError, FaultConfig};
pub use geom::{Dataset, DbscanParams, PointId};
pub use mcs::{BuildOptions, ParBuildStats};
pub use metrics::{Counters, PhaseTimer};
pub use mudbscan_core::{naive_dbscan, Clustering, NOISE};
pub use stream::{
    Drained, ExtId, Membership, RemoveOutcome, ServeError, ServeHandle, ServeOp, ServeOptions,
    ServeStats, ServingMuDbscan, Snapshot,
};

use dist::{DistConfig, MuDbscanD};
use mudbscan_core::{MuDbscan, ParMuDbscan};
use optics::{extract_dbscan, Optics};
use stream::StreamingMuDbscan;

/// The six algorithm families the facade can construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Sequential μDBSCAN (paper §IV).
    Sequential,
    /// Shared-memory parallel μDBSCAN.
    Parallel,
    /// μDBSCAN-D over the BSP cluster simulator (paper §V).
    Distributed,
    /// Insertion-incremental μDBSCAN, bulk-loaded from the dataset.
    Streaming,
    /// OPTICS ordering with DBSCAN extraction at the generating ε.
    Optics,
    /// The concurrent serving layer over the streaming engine: as a
    /// batch family it ingests the dataset in one epoch and drains; the
    /// long-running handle shape is [`Runner::serve`].
    Serving,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::Sequential => "Sequential",
            Family::Parallel => "Parallel",
            Family::Distributed => "Distributed",
            Family::Streaming => "Streaming",
            Family::Optics => "Optics",
            Family::Serving => "Serving",
        }
    }
}

/// Family-specific extras accompanying a [`RunOutput`].
#[derive(Debug)]
pub enum RunDetails {
    /// Sequential μDBSCAN reporting quantities (paper Tables II–IV).
    Sequential {
        /// Number of micro-clusters formed.
        mc_count: usize,
        /// Average points per micro-cluster.
        avg_mc_size: f64,
        /// Estimated peak structure bytes.
        peak_heap_bytes: usize,
    },
    /// Parallel-run extras.
    Parallel {
        /// Number of micro-clusters formed.
        mc_count: usize,
        /// Tiled-construction diagnostics (`None` when the sequential
        /// builder was pinned via options).
        build_stats: Option<ParBuildStats>,
    },
    /// Distributed-run extras.
    Distributed {
        /// Virtual runtime excluding partitioning and halo exchange.
        runtime_secs: f64,
        /// Bytes communicated.
        comm_bytes: u64,
        /// Simulated rank count.
        ranks: usize,
        /// Maximum per-rank structure bytes.
        max_rank_heap_bytes: usize,
        /// Per-rank virtual-clock totals.
        rank_clocks: Vec<RankClock>,
        /// BSP supersteps executed.
        supersteps: usize,
        /// Fault/recovery counters (all zero on a fault-free run).
        fault_stats: FaultStats,
    },
    /// Streaming runs have no extras beyond the snapshot clustering.
    Streaming,
    /// Serving-run extras (batch shape: one ingest epoch, then drain).
    Serving {
        /// Epochs published by the writer (1 for the batch shape).
        epochs: u64,
        /// Points live in the drained snapshot.
        final_points: usize,
    },
    /// The OPTICS ordering the clustering was extracted from.
    Optics {
        /// Point ids in processing order.
        order: Vec<PointId>,
        /// Per-point reachability distances.
        reachability: Vec<f64>,
        /// Per-point core distances at the generating ε.
        core_distance: Vec<f64>,
    },
}

/// Uniform output of any facade-driven run.
#[derive(Debug)]
pub struct RunOutput {
    /// The exact DBSCAN clustering.
    pub clustering: Clustering,
    /// Aggregated operation counters.
    pub counters: Counters,
    /// Wall-clock (or, for `Distributed`, virtual) phase split-up.
    pub phases: PhaseTimer,
    /// Family-specific extras.
    pub details: RunDetails,
}

/// A configured clustering algorithm, ready to run. Everything a
/// [`Runner`] builds implements this, so downstream drivers (the
/// conformance registry, the bench harness) hold `Box<dyn Cluster>`
/// instead of per-family glue.
pub trait Cluster: Sync {
    /// Cluster `data`.
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError>;
}

/// Fluent builder over the six families. See the [module docs](self)
/// for the inference rules; every knob is validated against the resolved
/// family by [`Runner::build`].
#[derive(Debug, Clone)]
pub struct Runner {
    params: DbscanParams,
    family: Option<Family>,
    threads: usize,
    ranks: Option<usize>,
    opts: Option<BuildOptions>,
    faults: Option<FaultConfig>,
    threaded_ranks: bool,
    disable_dynamic_promotion: bool,
    disable_post_core_mc_skip: bool,
}

impl Runner {
    /// Start a builder with the given density parameters.
    pub fn new(params: DbscanParams) -> Self {
        Self {
            params,
            family: None,
            threads: 1,
            ranks: None,
            opts: None,
            faults: None,
            threaded_ranks: false,
            disable_dynamic_promotion: false,
            disable_post_core_mc_skip: false,
        }
    }

    /// Force a family instead of inferring it from `threads`/`ranks`.
    pub fn family(mut self, family: Family) -> Self {
        self.family = Some(family);
        self
    }

    /// Worker threads: the thread-pool size for [`Family::Parallel`], or
    /// the per-rank local threads for [`Family::Distributed`]. Selects
    /// `Parallel` when `> 1` and no other family is implied.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1");
        self.threads = threads;
        self
    }

    /// Simulated rank count; selects [`Family::Distributed`] unless a
    /// family was forced.
    pub fn ranks(mut self, ranks: usize) -> Self {
        assert!(ranks >= 1, "ranks must be >= 1");
        self.ranks = Some(ranks);
        self
    }

    /// Override micro-cluster construction options.
    pub fn options(mut self, opts: BuildOptions) -> Self {
        self.opts = Some(opts);
        self
    }

    /// Inject a fault plan (under the default retry policy) into a
    /// distributed run; see [`FaultPlan`].
    pub fn fault_plan(self, plan: FaultPlan) -> Self {
        self.faults_config(FaultConfig::new(plan))
    }

    /// Inject a full fault configuration (plan + retry policy).
    pub fn faults_config(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Run the distributed rank programs on real threads
    /// ([`cluster_sim::ExecMode::Threaded`]).
    pub fn threaded_ranks(mut self) -> Self {
        self.threaded_ranks = true;
        self
    }

    /// Ablation knob of [`Family::Sequential`]: skip the dynamic
    /// wndq-core promotion (Algorithm 6 step (iii)).
    pub fn disable_dynamic_promotion(mut self, disable: bool) -> Self {
        self.disable_dynamic_promotion = disable;
        self
    }

    /// Ablation knob of [`Family::Sequential`]: disable the
    /// MC-granularity skip in POST-PROCESSING-CORE (Algorithm 7).
    pub fn disable_post_core_mc_skip(mut self, disable: bool) -> Self {
        self.disable_post_core_mc_skip = disable;
        self
    }

    /// The family this configuration resolves to.
    pub fn resolved_family(&self) -> Family {
        self.family.unwrap_or({
            if self.ranks.is_some() {
                Family::Distributed
            } else if self.threads > 1 {
                Family::Parallel
            } else {
                Family::Sequential
            }
        })
    }

    /// Validate every knob against `family`; the `Err` message names
    /// the offending knob and the family it clashes with.
    fn validate(&self, family: Family) -> Result<(), MuDbscanError> {
        let bad = |knob: &str| {
            Err(MuDbscanError::InvalidConfig(format!(
                "{knob} is not supported by the {} family",
                family.name()
            )))
        };
        if !matches!(family, Family::Distributed) {
            if self.faults.is_some() {
                return bad("a fault plan");
            }
            if self.ranks.is_some() {
                return bad("a rank count");
            }
            if self.threaded_ranks {
                return bad("threaded rank execution");
            }
        }
        if !matches!(family, Family::Sequential)
            && (self.disable_dynamic_promotion || self.disable_post_core_mc_skip)
        {
            return bad("an ablation knob");
        }
        if !matches!(family, Family::Parallel | Family::Distributed) && self.threads > 1 {
            return bad("a worker-thread count");
        }
        if matches!(family, Family::Streaming | Family::Serving) && self.opts.is_some() {
            return bad("a build-options override");
        }
        Ok(())
    }

    /// Validate the configuration and construct the concrete algorithm.
    pub fn build(&self) -> Result<Box<dyn Cluster>, MuDbscanError> {
        let family = self.resolved_family();
        self.validate(family)?;

        Ok(match family {
            Family::Sequential => {
                let mut algo = MuDbscan::from_params(self.params);
                if let Some(opts) = self.opts {
                    algo = algo.with_options(opts);
                }
                algo.disable_dynamic_promotion = self.disable_dynamic_promotion;
                algo.disable_post_core_mc_skip = self.disable_post_core_mc_skip;
                Box::new(Seq { algo })
            }
            Family::Parallel => {
                let mut algo = ParMuDbscan::from_params(self.params, self.threads);
                if let Some(opts) = self.opts {
                    algo = algo.with_options(opts);
                }
                Box::new(Par { algo })
            }
            Family::Distributed => {
                let mut cfg = DistConfig::new(self.ranks.unwrap_or(1));
                if self.threaded_ranks {
                    cfg = cfg.threaded();
                }
                cfg = cfg.with_local_threads(self.threads);
                let mut algo = MuDbscanD::from_params(self.params, cfg);
                if let Some(opts) = self.opts {
                    algo = algo.with_options(opts);
                }
                if let Some(faults) = self.faults.clone() {
                    algo = algo.with_faults(faults);
                }
                Box::new(DistRun { algo })
            }
            Family::Streaming => Box::new(Streaming { params: self.params }),
            Family::Serving => Box::new(ServeRun { params: self.params }),
            Family::Optics => {
                let mut algo = Optics::from_params(self.params);
                if let Some(opts) = self.opts {
                    algo = algo.with_options(opts);
                }
                Box::new(OpticsRun { algo, eps: self.params.eps })
            }
        })
    }

    /// Build and run in one step.
    pub fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        self.build()?.run(data)
    }

    /// Start the long-running serving engine ([`Family::Serving`]) for
    /// `dim`-dimensional points and return a [`ServeHandle`] for
    /// batched ingest (inserts, deletions, TTL expiry) and
    /// snapshot-isolated queries. The configuration is validated like
    /// any other build: forcing a different family first, or setting a
    /// knob the serving engine cannot honour, is an
    /// [`MuDbscanError::InvalidConfig`]. See `docs/SERVING.md` for the
    /// architecture and the exactness contract.
    pub fn serve(&self, dim: usize) -> Result<ServeHandle, MuDbscanError> {
        self.serve_with(dim, ServeOptions::default())
    }

    /// [`Runner::serve`] with explicit serving-layer options: the
    /// deletion-repair budget ([`ServeOptions::repair_budget`], whose
    /// default adapts to the live set size and whose `Some(0)` rebuilds
    /// on every structural deletion — the baseline the benchmark suite
    /// compares against), plus the telemetry knobs — flight-recorder
    /// capacity, postmortem directory, and the exactness self-check
    /// cadence ([`ServeOptions::self_check_every`]). None of them
    /// changes published results. The running engine's telemetry is
    /// polled via [`ServeHandle::stats`].
    pub fn serve_with(&self, dim: usize, opts: ServeOptions) -> Result<ServeHandle, MuDbscanError> {
        if let Some(f) = self.family {
            if !matches!(f, Family::Serving) {
                return Err(MuDbscanError::InvalidConfig(format!(
                    "serve() starts the Serving family, but the {} family was forced",
                    f.name()
                )));
            }
        }
        self.validate(Family::Serving)?;
        if dim == 0 {
            return Err(MuDbscanError::InvalidConfig(
                "the served point dimension must be positive".into(),
            ));
        }
        Ok(ServingMuDbscan::spawn_with(dim, self.params, opts))
    }

    /// The sorted k-distance sample of `data` (descending): each
    /// sampled point's distance to its `k`-th nearest *other* neighbour,
    /// the curve whose knee is the classical ε-selection heuristic
    /// (Ester et al. 1996, §4.2) and the `k = MinPts` summary the bench
    /// harness exports alongside serve telemetry. Sampling strides the
    /// dataset to at most ~2048 points so the probe stays cheap on big
    /// inputs; `k` must be ≥ 1 (an [`MuDbscanError::InvalidConfig`]
    /// otherwise). The runner's density parameters do not affect the
    /// curve — only `k` and the data do.
    ///
    /// ```
    /// use mudbscan::prelude::*;
    ///
    /// let data = Dataset::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![9.0]]);
    /// let curve = Runner::new(DbscanParams::new(0.5, 2)).kdist_sample(&data, 2).unwrap();
    /// assert_eq!(curve.len(), data.len());
    /// assert!(curve.windows(2).all(|w| w[0] >= w[1]), "descending");
    /// ```
    pub fn kdist_sample(&self, data: &Dataset, k: usize) -> Result<Vec<f64>, MuDbscanError> {
        if k == 0 {
            return Err(MuDbscanError::InvalidConfig(
                "the k-distance neighbour rank must be >= 1".into(),
            ));
        }
        let sample_every = (data.len() / 2048).max(1);
        Ok(mudbscan_core::k_dist_curve(data, k, sample_every))
    }
}

impl Cluster for Runner {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        Runner::run(self, data)
    }
}

struct Seq {
    algo: MuDbscan,
}

impl Cluster for Seq {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let out = self.algo.run(data);
        Ok(RunOutput {
            clustering: out.clustering,
            counters: out.counters,
            phases: out.phases,
            details: RunDetails::Sequential {
                mc_count: out.mc_count,
                avg_mc_size: out.avg_mc_size,
                peak_heap_bytes: out.peak_heap_bytes,
            },
        })
    }
}

struct Par {
    algo: ParMuDbscan,
}

impl Cluster for Par {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let out = self.algo.run(data);
        Ok(RunOutput {
            clustering: out.clustering,
            counters: out.counters.snapshot(),
            phases: out.phases,
            details: RunDetails::Parallel { mc_count: out.mc_count, build_stats: out.build_stats },
        })
    }
}

struct DistRun {
    algo: MuDbscanD,
}

impl Cluster for DistRun {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let out = self.algo.run(data)?;
        Ok(RunOutput {
            clustering: out.clustering,
            counters: out.counters,
            phases: out.phases,
            details: RunDetails::Distributed {
                runtime_secs: out.runtime_secs,
                comm_bytes: out.comm_bytes,
                ranks: out.ranks,
                max_rank_heap_bytes: out.max_rank_heap_bytes,
                rank_clocks: out.rank_clocks,
                supersteps: out.supersteps,
                fault_stats: out.fault_stats,
            },
        })
    }
}

struct Streaming {
    params: DbscanParams,
}

impl Cluster for Streaming {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let mut s = StreamingMuDbscan::from_dataset(data, self.params);
        let clustering = s.snapshot();
        let counters = Counters::new();
        counters.absorb(s.counters());
        Ok(RunOutput {
            clustering,
            counters,
            phases: PhaseTimer::new(),
            details: RunDetails::Streaming,
        })
    }
}

struct ServeRun {
    params: DbscanParams,
}

impl Cluster for ServeRun {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let handle = ServingMuDbscan::spawn(data.dim(), self.params);
        handle.ingest(data.iter().map(|(_, c)| ServeOp::insert(c.to_vec())).collect())?;
        let drained = handle.shutdown()?;
        Ok(RunOutput {
            clustering: drained.snapshot.clustering().clone(),
            counters: drained.counters,
            phases: PhaseTimer::new(),
            details: RunDetails::Serving {
                epochs: drained.snapshot.epoch(),
                final_points: drained.snapshot.len(),
            },
        })
    }
}

struct OpticsRun {
    algo: Optics,
    eps: f64,
}

impl Cluster for OpticsRun {
    fn run(&self, data: &Dataset) -> Result<RunOutput, MuDbscanError> {
        let out = self.algo.run(data);
        let clustering = extract_dbscan(&out, data, self.eps);
        Ok(RunOutput {
            clustering,
            counters: out.counters,
            phases: out.phases,
            details: RunDetails::Optics {
                order: out.order,
                reachability: out.reachability,
                core_distance: out.core_distance,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_rows(&[vec![0.0, 0.0], vec![0.2, 0.0], vec![0.0, 0.2], vec![8.0, 8.0]])
    }

    #[test]
    fn family_inference() {
        let p = DbscanParams::new(0.5, 3);
        assert_eq!(Runner::new(p).resolved_family(), Family::Sequential);
        assert_eq!(Runner::new(p).threads(4).resolved_family(), Family::Parallel);
        assert_eq!(Runner::new(p).ranks(4).resolved_family(), Family::Distributed);
        assert_eq!(Runner::new(p).threads(4).ranks(4).resolved_family(), Family::Distributed);
        assert_eq!(Runner::new(p).family(Family::Streaming).resolved_family(), Family::Streaming);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let p = DbscanParams::new(0.5, 3);
        let plan = FaultPlan::new(1).with(Fault::Straggler { rank: 0, slowdown: 2.0 });
        for bad in [
            Runner::new(p).fault_plan(plan.clone()), // faults w/o ranks
            Runner::new(p).threads(4).fault_plan(plan), // faults on Parallel
            Runner::new(p).family(Family::Sequential).ranks(2), // ranks on forced Seq
            Runner::new(p).family(Family::Optics).threads(4), // threads on Optics
            Runner::new(p).family(Family::Streaming).threads(2), // threads on Streaming
            Runner::new(p).family(Family::Streaming).options(BuildOptions::default()),
            Runner::new(p).family(Family::Serving).threads(2), // threads on Serving
            Runner::new(p).family(Family::Serving).options(BuildOptions::default()),
            Runner::new(p).threads(2).disable_dynamic_promotion(true), // knob on Parallel
            Runner::new(p).ranks(2).disable_post_core_mc_skip(true),   // knob on Distributed
            Runner::new(p).family(Family::Sequential).threaded_ranks(),
        ] {
            match bad.build() {
                Err(MuDbscanError::InvalidConfig(msg)) => {
                    assert!(msg.contains("not supported"), "unexpected message: {msg}")
                }
                other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
            }
        }
    }

    #[test]
    fn all_six_families_run_and_agree() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let reference = naive_dbscan(&data, &p);
        for runner in [
            Runner::new(p),
            Runner::new(p).threads(2),
            Runner::new(p).ranks(2),
            Runner::new(p).family(Family::Streaming),
            Runner::new(p).family(Family::Optics),
            Runner::new(p).family(Family::Serving),
        ] {
            let family = runner.resolved_family();
            let out = runner.run(&data).unwrap_or_else(|e| panic!("{family:?}: {e}"));
            assert_eq!(out.clustering, reference, "{family:?} disagrees with the oracle");
        }
    }

    #[test]
    fn serve_handle_round_trip() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let handle = Runner::new(p).serve(2).unwrap();
        let ids =
            handle.ingest(data.iter().map(|(_, c)| ServeOp::insert(c.to_vec())).collect()).unwrap();
        assert_eq!(ids.len(), data.len());
        let drained = handle.drain().unwrap();
        assert_eq!(drained.snapshot.epoch(), 1);
        // The served epoch is bit-identical to the batch family's answer.
        let batch = Runner::new(p).family(Family::Serving).run(&data).unwrap();
        assert_eq!(*drained.snapshot.clustering(), batch.clustering);
        assert_eq!(handle.membership(ids[0]), Some(Membership { cluster: Some(0), is_core: true }));
        assert_eq!(handle.membership(ids[3]), Some(Membership { cluster: None, is_core: false }));
    }

    #[test]
    fn serve_with_budget_zero_still_serves_exactly() {
        // `repair_budget: Some(0)` (rebuild on every structural delete)
        // must be reachable from the facade and stay exact.
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let handle = Runner::new(p)
            .serve_with(2, ServeOptions { repair_budget: Some(0), ..Default::default() })
            .unwrap();
        let ids =
            handle.ingest(data.iter().map(|(_, c)| ServeOp::insert(c.to_vec())).collect()).unwrap();
        handle.ingest(vec![ServeOp::delete(ids[0])]).unwrap();
        let drained = handle.shutdown().unwrap();
        let survivors =
            Dataset::from_rows(&data.iter().skip(1).map(|(_, c)| c.to_vec()).collect::<Vec<_>>());
        let oracle = naive_dbscan(&survivors, &p);
        assert_eq!(*drained.snapshot.clustering(), oracle);
    }

    #[test]
    fn serve_rejects_bad_configurations() {
        let p = DbscanParams::new(0.5, 3);
        for bad in [
            Runner::new(p).family(Family::Optics).serve(2),
            Runner::new(p).ranks(2).serve(2),
            Runner::new(p).threads(4).serve(2),
            Runner::new(p).serve(0),
        ] {
            assert!(matches!(bad, Err(MuDbscanError::InvalidConfig(_))));
        }
        // Forcing Serving explicitly is fine.
        assert!(Runner::new(p).family(Family::Serving).serve(3).is_ok());
    }

    #[test]
    fn serve_stats_poll_through_the_facade() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let handle = Runner::new(p).serve(2).unwrap();
        handle.ingest(data.iter().map(|(_, c)| ServeOp::insert(c.to_vec())).collect()).unwrap();
        handle.drain().unwrap();
        let stats = handle.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.live_points, 4);
        assert_eq!(stats.clusters, 1);
        assert_eq!(stats.window.count("serve/inserts"), 4);
        assert!(stats.render_prom().contains("mudbscan_serve_epochs 1"));
        // A second poll with nothing in between yields an empty window.
        assert_eq!(handle.stats().window.count("serve/inserts"), 0);
    }

    #[test]
    fn kdist_sample_is_descending_and_validates_k() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let curve = Runner::new(p).kdist_sample(&data, 3).unwrap();
        assert_eq!(curve.len(), data.len());
        assert!(curve.windows(2).all(|w| w[0] >= w[1]), "curve must be descending: {curve:?}");
        assert!(matches!(
            Runner::new(p).kdist_sample(&data, 0),
            Err(MuDbscanError::InvalidConfig(_))
        ));
    }

    #[test]
    fn details_match_family() {
        let data = tiny();
        let p = DbscanParams::new(0.5, 3);
        let out = Runner::new(p).ranks(2).run(&data).unwrap();
        match out.details {
            RunDetails::Distributed { ranks, fault_stats, .. } => {
                assert_eq!(ranks, 2);
                assert!(fault_stats.is_quiet());
            }
            other => panic!("expected Distributed details, got {other:?}"),
        }
        let out = Runner::new(p).family(Family::Optics).run(&data).unwrap();
        match out.details {
            RunDetails::Optics { order, .. } => assert_eq!(order.len(), data.len()),
            other => panic!("expected Optics details, got {other:?}"),
        }
    }
}
