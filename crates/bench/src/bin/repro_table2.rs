//! Table II reproduction: sequential runtime of R-DBSCAN, G-DBSCAN,
//! GridDBSCAN and μDBSCAN on the eight dataset analogues, plus the
//! number of micro-clusters and the % of queries saved.
//!
//! ```text
//! cargo run --release -p bench --bin repro_table2
//! ```

use baselines::{GDbscan, GridDbscan, RDbscan};
use bench::{banner, secs, timed, SEED};
use metrics::Table;
use mudbscan::prelude::{RunDetails, Runner};

/// Paper row: (R-DBSCAN s, G-DBSCAN s, GridDBSCAN s, μDBSCAN s, m, %saved).
const PAPER: &[(&str, &str, &str, &str, &str, &str, &str)] = &[
    ("3DSRN", "49.51", "245.45", "41.97", "22.87", "22353", "80.99%"),
    ("DGB0.5M3D", "37.06", "3103.57", "53.87", "23.39", "99031", "43.60%"),
    ("HHP0.5M5D", "5040.36", "1079.37", "1406.51", "795.03", "8625", "93.49%"),
    ("MPAGB6M3D", "15922.28", ">12h", "2704.71", "572.28", "734881", "69.47%"),
    ("FOF56M3D", "59154.04", ">12h", "17036.34", "6960.05", "782969", "95.68%"),
    ("MPAGD100M3D", "18574.45", ">12h", "MemErr", "11329.92", "3268853", "86.92%"),
    ("KDDB145K14D", "3604.48", "584.23", "5192.62", "360.9", "906", "96.34%"),
    ("KDDB145K24D", "8270.85", "2612.07", "MemErr", "2578.58", "655", "96.60%"),
];

fn main() {
    banner(
        "Table II — sequential runtime comparison",
        "run time (s) of R-DBSCAN / G-DBSCAN / GridDBSCAN / μDBSCAN, #MCs, % query saves",
        "paper sizes 0.43M–100M points; analogues scaled to 8K–100K (see data::catalog)",
    );

    let mut ours = Table::new(&[
        "dataset",
        "n",
        "d",
        "eps",
        "MinPts",
        "R-DBSCAN",
        "G-DBSCAN",
        "GridDBSCAN",
        "μDBSCAN",
        "MCs (m)",
        "% saved",
        "μ vs R",
    ]);

    for spec in data::paper_table2_specs() {
        let dataset = spec.generate(SEED);
        let params = spec.params;
        eprintln!("[{}] n={} d={} ...", spec.name, dataset.len(), dataset.dim());

        let (r_out, r_secs) = timed(|| RDbscan::new(params).run(&dataset));
        let (g_out, g_secs) = timed(|| GDbscan::new(params).run(&dataset));
        let (grid_res, grid_secs) = timed(|| GridDbscan::new(params).run(&dataset));
        let (mu_out, mu_secs) =
            timed(|| Runner::new(params).run(&dataset).expect("sequential run"));
        let mc_count = match mu_out.details {
            RunDetails::Sequential { mc_count, .. } => mc_count,
            ref other => panic!("expected Sequential details, got {other:?}"),
        };

        // All exact algorithms must agree (cheap structural check; full
        // exactness is covered by the test suite).
        assert_eq!(r_out.clustering.n_clusters, mu_out.clustering.n_clusters, "{}", spec.name);
        assert_eq!(g_out.clustering.core_count(), mu_out.clustering.core_count(), "{}", spec.name);
        let grid_cell = match &grid_res {
            Ok(out) => {
                assert_eq!(out.clustering.n_clusters, mu_out.clustering.n_clusters);
                secs(grid_secs)
            }
            Err(e) => {
                let _ = e;
                "MemErr".to_string()
            }
        };

        ours.row(&[
            spec.name.to_string(),
            dataset.len().to_string(),
            dataset.dim().to_string(),
            format!("{}", params.eps),
            params.min_pts.to_string(),
            secs(r_secs),
            secs(g_secs),
            grid_cell,
            secs(mu_secs),
            mc_count.to_string(),
            format!("{:.2}%", mu_out.counters.pct_queries_saved()),
            format!("{:.2}x", r_secs / mu_secs),
        ]);
    }

    println!("measured (this machine, scaled analogues):");
    ours.print();

    println!("\npaper values (32 GB node, original datasets):");
    let mut paper = Table::new(&[
        "dataset",
        "R-DBSCAN",
        "G-DBSCAN",
        "GridDBSCAN",
        "μDBSCAN",
        "MCs (m)",
        "% saved",
    ]);
    for &(name, r, g, grid, mu, m, sv) in PAPER {
        paper.row_str(&[name, r, g, grid, mu, m, sv]);
    }
    paper.print();

    println!("\nshape checks: μDBSCAN fastest on every dataset; G-DBSCAN worst on");
    println!("large low-d data; GridDBSCAN memory-errors at d >= 14; m << n;");
    println!("highest query savings on HHP/KDDB/FOF analogues.");
}
