//! Property tests for micro-cluster construction and the μR-tree.

use geom::{dist_euclidean, Dataset};
use mcs::{build_micro_clusters, BuildOptions, McKind, NO_MC};
use metrics::Counters;
use proptest::prelude::*;

fn points(dim: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-20.0..20.0f64, dim), 1..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn construction_invariants(rows in points(3, 250), eps in 0.3..6.0f64) {
        let data = Dataset::from_rows(&rows);
        let c = Counters::new();
        let t = build_micro_clusters(&data, eps, &BuildOptions::default(), &c);

        // Exclusive, complete membership within eps of the center.
        let mut owner = vec![NO_MC; data.len()];
        for (mi, mc) in t.mcs.iter().enumerate() {
            prop_assert!(!mc.members.is_empty());
            prop_assert_eq!(mc.members[0], mc.center);
            for &m in &mc.members {
                prop_assert_eq!(owner[m as usize], NO_MC);
                owner[m as usize] = mi as u32;
                prop_assert!(dist_euclidean(data.point(m), data.point(mc.center)) < eps);
                prop_assert!(mc.mbr.contains_point(data.point(m)));
            }
            // inner_count consistent with the strict <eps/2 definition.
            let ic = mc.inner_circle(&data, eps).count();
            prop_assert_eq!(ic as u32, mc.inner_count);
        }
        prop_assert!(owner.iter().all(|&o| o != NO_MC));
        prop_assert_eq!(&owner, &t.assignment);

        // No two centers within eps of each other.
        for (i, a) in t.mcs.iter().enumerate() {
            for b in t.mcs.iter().skip(i + 1) {
                prop_assert!(
                    dist_euclidean(data.point(a.center), data.point(b.center)) >= eps
                );
            }
        }
    }

    #[test]
    fn neighborhood_query_is_exact(rows in points(2, 300), eps in 0.3..5.0f64) {
        let data = Dataset::from_rows(&rows);
        let c = Counters::new();
        let mut t = build_micro_clusters(&data, eps, &BuildOptions::default(), &c);
        t.compute_reachable(&data, &c);
        // Probe a deterministic sample of points.
        for p in (0..data.len() as u32).step_by((data.len() / 10).max(1)) {
            let mut got = Vec::new();
            t.neighborhood(&data, p, &mut got);
            got.sort_unstable();
            let mut want: Vec<u32> = data
                .iter()
                .filter(|(_, q)| dist_euclidean(data.point(p), q) < eps)
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "point {}", p);
        }
    }

    #[test]
    fn dmc_inner_points_are_truly_core(rows in points(2, 200), eps in 0.3..4.0f64, min_pts in 2usize..7) {
        // Lemma 1 validated empirically: every inner-circle point of a
        // DMC has >= MinPts strict ε-neighbours in the full dataset.
        let data = Dataset::from_rows(&rows);
        let params = geom::DbscanParams::new(eps, min_pts);
        let c = Counters::new();
        let t = build_micro_clusters(&data, eps, &BuildOptions::default(), &c);
        for mc in &t.mcs {
            if mc.kind(&params) != McKind::Dense {
                continue;
            }
            for q in mc.inner_circle(&data, eps) {
                let count = data
                    .iter()
                    .filter(|(_, x)| dist_euclidean(data.point(q), x) < eps)
                    .count();
                prop_assert!(count >= min_pts, "Lemma 1 violated for point {}", q);
            }
        }
    }

    #[test]
    fn cmc_center_is_truly_core(rows in points(3, 200), eps in 0.3..4.0f64, min_pts in 2usize..7) {
        // Lemma 2 validated empirically.
        let data = Dataset::from_rows(&rows);
        let params = geom::DbscanParams::new(eps, min_pts);
        let c = Counters::new();
        let t = build_micro_clusters(&data, eps, &BuildOptions::default(), &c);
        for mc in &t.mcs {
            if matches!(mc.kind(&params), McKind::Core | McKind::Dense) {
                let count = data
                    .iter()
                    .filter(|(_, x)| dist_euclidean(data.point(mc.center), x) < eps)
                    .count();
                prop_assert!(count >= min_pts, "Lemma 2 violated for MC center {}", mc.center);
            }
        }
    }

    #[test]
    fn reachable_lists_cover_all_neighbour_mcs(rows in points(2, 200), eps in 0.3..4.0f64) {
        // Lemma 3: for any point x, every MC containing an ε-neighbour of
        // x must be in the reachable list of x's MC.
        let data = Dataset::from_rows(&rows);
        let c = Counters::new();
        let mut t = build_micro_clusters(&data, eps, &BuildOptions::default(), &c);
        t.compute_reachable(&data, &c);
        for p in (0..data.len() as u32).step_by((data.len() / 8).max(1)) {
            let reach = t.reach_of(p);
            for (q, qc) in data.iter() {
                if dist_euclidean(data.point(p), qc) < eps {
                    let mc_q = t.assignment[q as usize];
                    prop_assert!(
                        reach.contains(&mc_q),
                        "MC {} holding neighbour {} missing from reach list of point {}",
                        mc_q, q, p
                    );
                }
            }
        }
    }
}
