//! Micro-cluster construction — paper Algorithm 3 (BUILD-MICRO-CLUSTERS).
//!
//! Single scan over the points:
//!
//! 1. if some MC center lies strictly within ε of the point, the point
//!    joins that MC (first found);
//! 2. otherwise, if some center lies within 2ε, the point is *deferred* to
//!    an `unassignedList` — creating a center here would produce a heavily
//!    overlapping MC, and the paper's 2ε rule keeps the MC count low;
//! 3. otherwise the point becomes the center of a new MC.
//!
//! A second scan assigns the deferred points: join an MC within ε if one
//! exists by now, else become a new center. Finally each MC gets an STR
//! bulk-loaded auxiliary R-tree.

use crate::micro::{McId, MicroCluster, NO_MC};
use crate::murtree::MuRTree;
use geom::{Dataset, PointId};
use metrics::Counters;
use rtree::{RTree, RTreeConfig};

/// Construction options (the knobs the ablation benches turn).
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Apply the 2ε deferral rule (paper default). Disabling it creates an
    /// MC at every point that is not within ε of an existing center.
    pub two_eps_deferral: bool,
    /// Build auxiliary R-trees with STR bulk loading (default) instead of
    /// repeated insertion.
    pub str_aux: bool,
    /// Fan-out of the level-1 tree over MC centers.
    pub level1_cfg: RTreeConfig,
    /// Fan-out of the per-MC auxiliary trees.
    pub aux_cfg: RTreeConfig,
    /// Use the tiled parallel construction path
    /// ([`crate::build_micro_clusters_par`]) instead of the sequential
    /// Algorithm-3 scan. Off by default so the sequential algorithms keep
    /// the paper's exact construction order; [`ParMuDbscan`] turns it on.
    ///
    /// [`ParMuDbscan`]: ../mudbscan/struct.ParMuDbscan.html
    pub parallel: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            two_eps_deferral: true,
            str_aux: true,
            level1_cfg: RTreeConfig::default(),
            aux_cfg: RTreeConfig::default(),
            parallel: false,
        }
    }
}

/// Build all micro-clusters and the μR-tree for `data`.
pub fn build_micro_clusters(
    data: &Dataset,
    eps: f64,
    opts: &BuildOptions,
    counters: &Counters,
) -> MuRTree {
    let _span = obs::span!("mc_build");
    let dim = data.dim();
    let mut level1 = RTree::with_config(dim, opts.level1_cfg);
    let mut mcs: Vec<MicroCluster> = Vec::new();
    let mut assignment: Vec<McId> = vec![NO_MC; data.len()];
    let mut unassigned: Vec<PointId> = Vec::new();

    let create_mc = |p: PointId,
                     coords: &[f64],
                     level1: &mut RTree,
                     mcs: &mut Vec<MicroCluster>,
                     assignment: &mut Vec<McId>| {
        let id = mcs.len() as McId;
        mcs.push(MicroCluster::new(p, coords));
        level1.insert_point(id, coords);
        assignment[p as usize] = id;
    };

    // First scan (Algorithm 3, PROCESS-POINT). Each probe charges the real
    // traversal cost `first_in_sphere` paid — the old code guessed (a flat
    // node visit per point, 1–2 dists per hit), skewing every downstream
    // query-save percentage.
    let scan1 = obs::span!("scan_assign");
    for (p, coords) in data.iter() {
        let (hit, cost) = level1.first_in_sphere(coords, eps);
        counters.count_node_visits(cost.nodes_visited.max(1));
        counters.count_dists(cost.mbr_tests);
        if let Some(mc) = hit {
            let center = mcs[mc as usize].center;
            mcs[mc as usize].insert(p, coords, data.point(center), eps);
            assignment[p as usize] = mc;
        } else if opts.two_eps_deferral {
            let (near, cost2) = level1.first_in_sphere(coords, 2.0 * eps);
            counters.count_node_visits(cost2.nodes_visited.max(1));
            counters.count_dists(cost2.mbr_tests);
            if near.is_some() {
                unassigned.push(p);
            } else {
                create_mc(p, coords, &mut level1, &mut mcs, &mut assignment);
            }
        } else {
            create_mc(p, coords, &mut level1, &mut mcs, &mut assignment);
        }
    }

    drop(scan1);
    let deferred = unassigned.len();

    // Second scan (PROCESS-UNASSIGNED-POINT), same real-cost accounting.
    let scan2 = obs::span!("scan_unassigned");
    for p in unassigned {
        let coords = data.point(p);
        let (hit, cost) = level1.first_in_sphere(coords, eps);
        counters.count_node_visits(cost.nodes_visited.max(1));
        counters.count_dists(cost.mbr_tests);
        if let Some(mc) = hit {
            let center = mcs[mc as usize].center;
            mcs[mc as usize].insert(p, coords, data.point(center), eps);
            assignment[p as usize] = mc;
        } else {
            create_mc(p, coords, &mut level1, &mut mcs, &mut assignment);
        }
    }

    drop(scan2);

    // Level 2: auxiliary R-trees.
    let _aux = obs::span!("aux_trees");
    for mc in &mut mcs {
        if opts.str_aux {
            mc.build_aux(data, opts.aux_cfg);
        } else {
            let mut t = RTree::with_config(dim, opts.aux_cfg);
            for &m in &mc.members {
                t.insert_point(m, data.point(m));
            }
            mc.aux = Some(t);
        }
    }

    if obs::enabled() {
        obs::record_count("mc/count", mcs.len() as u64);
        obs::record_count("mc/deferred_points", deferred as u64);
    }
    MuRTree::from_parts(eps, level1, mcs, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::dist_euclidean;

    fn grid(n: usize, step: f64) -> Dataset {
        let mut rows = Vec::new();
        for i in 0..n {
            for j in 0..n {
                rows.push(vec![i as f64 * step, j as f64 * step]);
            }
        }
        Dataset::from_rows(&rows)
    }

    fn check_partition(data: &Dataset, t: &MuRTree, eps: f64) {
        // Every point assigned to exactly one MC, within eps of its center.
        let mut seen = vec![false; data.len()];
        for (id, mc) in t.mcs.iter().enumerate() {
            for &m in &mc.members {
                assert!(!seen[m as usize], "point {m} in two MCs");
                seen[m as usize] = true;
                assert_eq!(t.assignment[m as usize], id as McId);
                assert!(
                    dist_euclidean(data.point(m), data.point(mc.center)) < eps,
                    "member outside its MC ball"
                );
            }
            assert_eq!(mc.center, mc.members[0], "center must be first member");
        }
        assert!(seen.iter().all(|&s| s), "unassigned point");
    }

    #[test]
    fn all_points_partitioned() {
        let data = grid(10, 0.4);
        let c = Counters::new();
        let t = build_micro_clusters(&data, 1.0, &BuildOptions::default(), &c);
        check_partition(&data, &t, 1.0);
        assert!(t.mcs.len() < data.len(), "should form far fewer MCs than points");
        assert!(c.dist_computations() > 0);
    }

    #[test]
    fn two_eps_rule_reduces_mc_count() {
        let data = grid(14, 0.35);
        let c = Counters::new();
        let with = build_micro_clusters(&data, 1.0, &BuildOptions::default(), &c);
        let without = build_micro_clusters(
            &data,
            1.0,
            &BuildOptions { two_eps_deferral: false, ..Default::default() },
            &c,
        );
        check_partition(&data, &with, 1.0);
        check_partition(&data, &without, 1.0);
        assert!(
            with.mcs.len() <= without.mcs.len(),
            "deferral produced more MCs ({} > {})",
            with.mcs.len(),
            without.mcs.len()
        );
    }

    #[test]
    fn centers_are_pairwise_separated() {
        // After construction no two centers can be within eps of each other:
        // the later one would have joined the earlier MC.
        let data = grid(12, 0.3);
        let c = Counters::new();
        let t = build_micro_clusters(&data, 1.0, &BuildOptions::default(), &c);
        for (i, a) in t.mcs.iter().enumerate() {
            for b in t.mcs.iter().skip(i + 1) {
                assert!(
                    dist_euclidean(data.point(a.center), data.point(b.center)) >= 1.0,
                    "two MC centers within eps"
                );
            }
        }
    }

    #[test]
    fn incremental_aux_matches_str() {
        let data = grid(8, 0.4);
        let c = Counters::new();
        let a = build_micro_clusters(&data, 1.0, &BuildOptions::default(), &c);
        let b = build_micro_clusters(
            &data,
            1.0,
            &BuildOptions { str_aux: false, ..Default::default() },
            &c,
        );
        assert_eq!(a.mcs.len(), b.mcs.len());
        for (ma, mb) in a.mcs.iter().zip(&b.mcs) {
            assert_eq!(ma.members, mb.members);
            let qa = ma.aux.as_ref().unwrap();
            let qb = mb.aux.as_ref().unwrap();
            let mut na = qa.sphere_neighbors(data.point(ma.center), 0.7);
            let mut nb = qb.sphere_neighbors(data.point(ma.center), 0.7);
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn single_point_dataset() {
        let data = Dataset::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let c = Counters::new();
        let t = build_micro_clusters(&data, 0.5, &BuildOptions::default(), &c);
        assert_eq!(t.mcs.len(), 1);
        assert_eq!(t.mcs[0].members, vec![0]);
        assert_eq!(t.mcs[0].inner_count, 1);
    }

    #[test]
    fn duplicate_points_share_one_mc() {
        let data = Dataset::from_rows(&vec![vec![5.0, 5.0]; 20]);
        let c = Counters::new();
        let t = build_micro_clusters(&data, 1.0, &BuildOptions::default(), &c);
        assert_eq!(t.mcs.len(), 1);
        assert_eq!(t.mcs[0].len(), 20);
        assert_eq!(t.mcs[0].inner_count, 20);
    }
}
