//! Seeded synthetic dataset generators.
//!
//! All generators are deterministic in their seed and emit coordinates in
//! roughly `[0, 100]^d`, so the ε values in [`crate::catalog`] are
//! comparable across generators.

use geom::{Dataset, DatasetBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Box–Muller standard-normal sampler (keeps the dependency list to the
/// allowed offline crates — no `rand_distr`).
pub struct Normal {
    spare: Option<f64>,
}

impl Normal {
    /// New sampler.
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// One standard-normal sample.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let v: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = (-2.0 * u.ln()).sqrt();
            if r.is_finite() {
                self.spare = Some(r * v.sin());
                return r * v.cos();
            }
        }
    }
}

impl Default for Normal {
    fn default() -> Self {
        Self::new()
    }
}

/// Uniform points in `[0, 100]^dim`.
pub fn uniform(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for x in row.iter_mut() {
            *x = rng.gen_range(0.0..100.0);
        }
        b.push(&row);
    }
    b.build()
}

/// `k` Gaussian blobs (σ = `spread`) in `[0, 100]^dim` plus a
/// `noise_frac` fraction of uniform background.
pub fn gaussian_mixture(
    n: usize,
    dim: usize,
    k: usize,
    spread: f64,
    noise_frac: f64,
    seed: u64,
) -> Dataset {
    assert!(k >= 1 && (0.0..=1.0).contains(&noise_frac));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = Normal::new();
    let centers: Vec<Vec<f64>> =
        (0..k).map(|_| (0..dim).map(|_| rng.gen_range(10.0..90.0)).collect()).collect();
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        if rng.gen_bool(noise_frac) {
            for x in row.iter_mut() {
                *x = rng.gen_range(0.0..100.0);
            }
        } else {
            let c = &centers[rng.gen_range(0..k)];
            for (x, &cx) in row.iter_mut().zip(c) {
                *x = cx + spread * normal.sample(&mut rng);
            }
        }
        b.push(&row);
    }
    b.build()
}

/// Galaxy-catalogue analogue (MPAGD / DGB / FOF, Millennium run): a halo
/// model — halo masses from a power law, satellite points Gaussian around
/// halo centers with radius growing as mass^(1/3), plus a diffuse uniform
/// background. 3-d unless `dim` overrides (FOF28M14D is 14-d).
pub fn galaxy(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = Normal::new();
    let n_halos = (n / 60).max(4);
    struct Halo {
        center: Vec<f64>,
        radius: f64,
        weight: f64,
    }
    let mut halos = Vec::with_capacity(n_halos);
    let mut total_w = 0.0;
    for _ in 0..n_halos {
        // Power-law mass: m = (1-u)^(-1/alpha), alpha ~ 1.8.
        let u: f64 = rng.gen_range(0.0..0.999);
        let mass = (1.0 - u).powf(-1.0 / 1.8);
        let radius = 0.35 * mass.powf(1.0 / 3.0);
        let center = (0..dim).map(|_| rng.gen_range(5.0..95.0)).collect();
        total_w += mass;
        halos.push(Halo { center, radius, weight: mass });
    }
    // Cumulative weights for halo selection.
    let mut cum = Vec::with_capacity(n_halos);
    let mut acc = 0.0;
    for h in &halos {
        acc += h.weight / total_w;
        cum.push(acc);
    }
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        if rng.gen_bool(0.06) {
            for x in row.iter_mut() {
                *x = rng.gen_range(0.0..100.0);
            }
        } else {
            let u: f64 = rng.gen();
            let idx = cum.partition_point(|&c| c < u).min(n_halos - 1);
            let h = &halos[idx];
            for (x, &cx) in row.iter_mut().zip(&h.center) {
                *x = cx + h.radius * normal.sample(&mut rng);
            }
        }
        b.push(&row);
    }
    b.build()
}

/// Road-network analogue (3DSRN): points sampled with jitter along the
/// segments of a random planar-ish graph, with a smooth elevation as the
/// third coordinate — long thin arbitrary-shaped clusters, DBSCAN's
/// motivating workload.
pub fn road_network(n: usize, seed: u64) -> Dataset {
    let dim = 3;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = Normal::new();
    let n_nodes = (n / 200).clamp(6, 400);
    let nodes: Vec<[f64; 2]> =
        (0..n_nodes).map(|_| [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]).collect();
    // Connect each node to its 2 nearest neighbours — a crude road graph.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, a) in nodes.iter().enumerate() {
        let mut near: Vec<(f64, usize)> = nodes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, b)| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2), j))
            .collect();
        near.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for &(_, j) in near.iter().take(2) {
            edges.push((i.min(j), i.max(j)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let mut b = DatasetBuilder::with_capacity(dim, n);
    for _ in 0..n {
        let &(i, j) = &edges[rng.gen_range(0..edges.len())];
        let t: f64 = rng.gen();
        let x = nodes[i][0] + t * (nodes[j][0] - nodes[i][0]) + 0.05 * normal.sample(&mut rng);
        let y = nodes[i][1] + t * (nodes[j][1] - nodes[i][1]) + 0.05 * normal.sample(&mut rng);
        // Smooth elevation field.
        let z = 10.0 * ((x / 25.0).sin() + (y / 30.0).cos()) + 0.02 * normal.sample(&mut rng);
        b.push(&[x, y, z]);
    }
    b.build()
}

/// Household-power analogue (HHP, 5-d): a few daily-regime modes with
/// strongly anisotropic, correlated features (a random linear transform
/// of an axis-aligned Gaussian per mode).
pub fn household(n: usize, seed: u64) -> Dataset {
    let dim = 5;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = Normal::new();
    let k = 4;
    // Per-mode center + random mixing matrix (correlations).
    let modes: Vec<(Vec<f64>, Vec<f64>)> = (0..k)
        .map(|_| {
            let center: Vec<f64> = (0..dim).map(|_| rng.gen_range(20.0..80.0)).collect();
            let mix: Vec<f64> = (0..dim * dim).map(|_| rng.gen_range(-1.0..1.0) * 1.2).collect();
            (center, mix)
        })
        .collect();
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut z = vec![0.0; dim];
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        if rng.gen_bool(0.08) {
            for x in row.iter_mut() {
                *x = rng.gen_range(0.0..100.0);
            }
        } else {
            let (center, mix) = &modes[rng.gen_range(0..k)];
            for zi in z.iter_mut() {
                *zi = normal.sample(&mut rng);
            }
            for (r, (ci, mrow)) in row.iter_mut().zip(center.iter().zip(mix.chunks_exact(dim))) {
                *r = ci + mrow.iter().zip(&z).map(|(m, zi)| m * zi).sum::<f64>();
            }
        }
        b.push(&row);
    }
    b.build()
}

/// KDD-Cup-2004 Bio analogue: high-dimensional (`dim` up to 74) data with
/// a handful of broad clusters — at the paper's large ε only ~10²–10³
/// micro-clusters form, which is what makes μDBSCAN save >96 % of queries
/// there.
pub fn kddbio(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = Normal::new();
    let k = 6;
    let centers: Vec<Vec<f64>> =
        (0..k).map(|_| (0..dim).map(|_| rng.gen_range(25.0..75.0)).collect()).collect();
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        if rng.gen_bool(0.05) {
            for x in row.iter_mut() {
                *x = rng.gen_range(0.0..100.0);
            }
        } else {
            let c = &centers[rng.gen_range(0..k)];
            // Broad clusters: large sigma so the relative ε is big, like
            // the paper's ε = 200..1500 on KDDB.
            for (x, &cx) in row.iter_mut().zip(c) {
                *x = cx + 6.0 * normal.sample(&mut rng);
            }
        }
        b.push(&row);
    }
    b.build()
}

/// A drifting stream (for the insertion-incremental algorithm): cluster
/// centers move smoothly as the stream index advances, so early and late
/// points of one "logical" cluster occupy different regions — the
/// distribution-shift stress case for online clustering.
pub fn drifting_stream(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = Normal::new();
    let k = 3;
    let starts: Vec<Vec<f64>> =
        (0..k).map(|_| (0..dim).map(|_| rng.gen_range(20.0..80.0)).collect()).collect();
    let velocities: Vec<Vec<f64>> =
        (0..k).map(|_| (0..dim).map(|_| rng.gen_range(-20.0..20.0)).collect()).collect();
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut row = vec![0.0; dim];
    for i in 0..n {
        let t = i as f64 / n as f64; // stream progress in [0, 1)
        if rng.gen_bool(0.05) {
            for x in row.iter_mut() {
                *x = rng.gen_range(0.0..100.0);
            }
        } else {
            let c = rng.gen_range(0..k);
            for ((x, &s0), &v) in row.iter_mut().zip(&starts[c]).zip(&velocities[c]) {
                *x = s0 + v * t + 1.2 * normal.sample(&mut rng);
            }
        }
        b.push(&row);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = gaussian_mixture(500, 3, 4, 2.0, 0.1, 7);
        let b = gaussian_mixture(500, 3, 4, 2.0, 0.1, 7);
        let c = gaussian_mixture(500, 3, 4, 2.0, 0.1, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_and_dims() {
        assert_eq!(uniform(100, 2, 1).len(), 100);
        assert_eq!(galaxy(300, 3, 1).dim(), 3);
        assert_eq!(galaxy(300, 14, 1).dim(), 14);
        assert_eq!(road_network(400, 1).dim(), 3);
        assert_eq!(household(200, 1).dim(), 5);
        assert_eq!(kddbio(150, 74, 1).dim(), 74);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut nl = Normal::new();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| nl.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn galaxy_is_clustered_not_uniform() {
        // Clustered data has far more close pairs than uniform data.
        let g = galaxy(1500, 3, 3);
        let u = uniform(1500, 3, 3);
        let close_pairs = |d: &Dataset| {
            let mut c = 0usize;
            for i in 0..500u32 {
                for j in 0..500u32 {
                    if i != j && geom::dist_sq(d.point(i), d.point(j)) < 1.0 {
                        c += 1;
                    }
                }
            }
            c
        };
        assert!(close_pairs(&g) > 5 * close_pairs(&u).max(1));
    }

    #[test]
    fn road_network_lies_on_thin_structures() {
        // z is a function of (x, y) up to small noise: check the spread of
        // z - f(x, y) is tiny compared to the coordinate range.
        let d = road_network(1000, 5);
        let mut max_dev = 0.0f64;
        for (_, p) in d.iter() {
            let f = 10.0 * ((p[0] / 25.0).sin() + (p[1] / 30.0).cos());
            max_dev = max_dev.max((p[2] - f).abs());
        }
        assert!(max_dev < 1.0, "elevation deviates too much: {max_dev}");
    }

    #[test]
    fn drifting_stream_moves() {
        let d = drifting_stream(2_000, 2, 4);
        assert_eq!(d.len(), 2_000);
        assert!(d.validate_finite().is_ok());
        // Cluster velocities can cancel in the overall centroid, so
        // measure drift as the displacement of the early vs late window
        // bounding boxes (any moving cluster shifts a box edge).
        let bbox = |lo: usize, hi: usize| -> ([f64; 2], [f64; 2]) {
            let mut min = [f64::INFINITY; 2];
            let mut max = [f64::NEG_INFINITY; 2];
            for i in lo..hi {
                let p = d.point(i as u32);
                for k in 0..2 {
                    min[k] = min[k].min(p[k]);
                    max[k] = max[k].max(p[k]);
                }
            }
            (min, max)
        };
        let (a_min, a_max) = bbox(0, 200);
        let (b_min, b_max) = bbox(1_800, 2_000);
        let max_edge_shift = (0..2)
            .map(|k| (a_min[k] - b_min[k]).abs().max((a_max[k] - b_max[k]).abs()))
            .fold(0.0f64, f64::max);
        assert!(max_edge_shift > 2.0, "stream did not drift: {max_edge_shift}");
    }

    #[test]
    fn coordinates_in_expected_range() {
        for d in [
            uniform(200, 3, 9),
            gaussian_mixture(200, 3, 3, 2.0, 0.1, 9),
            galaxy(200, 3, 9),
            household(200, 9),
            kddbio(200, 24, 9),
        ] {
            let (lo, hi) = d.bounding_box().unwrap();
            for k in 0..d.dim() {
                assert!(lo[k] > -80.0 && hi[k] < 180.0, "coordinate blow-up");
            }
        }
    }
}
