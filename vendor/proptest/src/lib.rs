//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! The build environment has no crates.io access, so this crate provides a
//! compatible implementation of the APIs the workspace's property tests
//! call: the [`proptest!`] macro (with inner `#[test]` attributes and an
//! optional `#![proptest_config(..)]` line), range/tuple/`vec` strategies,
//! [`strategy::Strategy::prop_map`] / [`strategy::Strategy::prop_flat_map`],
//! `any`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! - Case generation is **deterministic**: the RNG seed is derived from the
//!   test's file/name and the case index, overridable with the
//!   `PROPTEST_SEED` environment variable. CI runs are therefore
//!   reproducible by construction.
//! - There is **no generic shrinking**. On failure the runner reports the
//!   full failing input (`Debug`) together with the seed that produced it.
//!   Domain-specific shrinking for clustering counterexamples lives in
//!   `crates/conformance`, which minimizes datasets against the exact
//!   oracle before dumping a replay artifact — strictly more effective for
//!   this workspace than structural shrinking.
//! - `PROPTEST_CASES`, when set, overrides the per-test case count; CI uses
//!   it to cap runtime.

pub mod strategy;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod test_runner {
    pub use crate::runner::{Config, TestCaseError, TestRng};
}

pub mod runner;

pub use runner::{Config as ProptestConfig, TestCaseError};

pub mod arbitrary {
    use crate::runner::TestRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Marker for types with a canonical "any value" strategy.
    pub trait Arbitrary: Clone + std::fmt::Debug + 'static {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let mag: f64 = rng.gen::<f64>() * 1e6;
            if rng.gen::<bool>() {
                mag
            } else {
                -mag
            }
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// `prop::collection::vec(..)` etc., as the real prelude exposes them.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current test case unless `$cond` holds.
///
/// Expands to an early `return Err(TestCaseError)` so it can be used both in
/// `proptest!` bodies and in helper functions returning
/// `Result<(), TestCaseError>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (counts as skipped, not failed) unless `$cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// The main property-test macro. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_prop(x in 0.0..1.0f64, n in 1usize..10) {
///         prop_assert!(x < n as f64 + 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a config line.
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // Without a config line.
    ( $(#[$meta:meta])* fn $($rest:tt)* ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    // Per-fn expansion: hand each fn's parameter tokens to the muncher,
    // which supports both `arg in strategy` and the `arg: Type` sugar
    // (shorthand for `arg in any::<Type>()`).
    ( @fns ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
    )* ) => {
        $(
            $crate::__proptest_case!(
                @parse [$cfg] [$(#[$meta])*] [$name] [$body] () () $($params)*
            );
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: emit the test item.
    ( @parse [$cfg:expr] [$(#[$meta:meta])*] [$name:ident] [$body:block]
      ( $($strat:expr,)* ) ( $($arg:ident,)* ) ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ( $($strat,)* );
            $crate::runner::run_property(
                &config,
                concat!(file!(), "::", stringify!($name)),
                &strategy,
                |( $($arg,)* )| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    };
    // `arg in strategy` (more parameters follow).
    ( @parse [$cfg:expr] [$(#[$meta:meta])*] [$name:ident] [$body:block]
      ( $($strat:expr,)* ) ( $($arg:ident,)* ) $a:ident in $s:expr, $($rest:tt)* ) => {
        $crate::__proptest_case!(
            @parse [$cfg] [$(#[$meta])*] [$name] [$body]
            ( $($strat,)* $s, ) ( $($arg,)* $a, ) $($rest)*
        );
    };
    // `arg in strategy` (final parameter, no trailing comma).
    ( @parse [$cfg:expr] [$(#[$meta:meta])*] [$name:ident] [$body:block]
      ( $($strat:expr,)* ) ( $($arg:ident,)* ) $a:ident in $s:expr ) => {
        $crate::__proptest_case!(
            @parse [$cfg] [$(#[$meta])*] [$name] [$body]
            ( $($strat,)* $s, ) ( $($arg,)* $a, )
        );
    };
    // `arg: Type` sugar (more parameters follow).
    ( @parse [$cfg:expr] [$(#[$meta:meta])*] [$name:ident] [$body:block]
      ( $($strat:expr,)* ) ( $($arg:ident,)* ) $a:ident : $ty:ty, $($rest:tt)* ) => {
        $crate::__proptest_case!(
            @parse [$cfg] [$(#[$meta])*] [$name] [$body]
            ( $($strat,)* $crate::arbitrary::any::<$ty>(), ) ( $($arg,)* $a, ) $($rest)*
        );
    };
    // `arg: Type` sugar (final parameter).
    ( @parse [$cfg:expr] [$(#[$meta:meta])*] [$name:ident] [$body:block]
      ( $($strat:expr,)* ) ( $($arg:ident,)* ) $a:ident : $ty:ty ) => {
        $crate::__proptest_case!(
            @parse [$cfg] [$(#[$meta])*] [$name] [$body]
            ( $($strat,)* $crate::arbitrary::any::<$ty>(), ) ( $($arg,)* $a, )
        );
    };
}
