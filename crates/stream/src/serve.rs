//! The concurrent serving layer: snapshot-isolated ingest/query engine.
//!
//! [`ServingMuDbscan`] turns the insertion-incremental engine into a
//! long-running service. A single **writer thread** owns a private
//! [`StreamingMuDbscan`] and applies batched operations — inserts plus
//! the deletion/TTL-expiry capability the bare streaming engine does
//! not have — then publishes an immutable epoch [`Snapshot`] through an
//! RCU-style pointer swap. Any number of concurrent readers answer
//! ε-neighbourhood and cluster-membership lookups against the snapshot
//! they pinned, never blocking on writer compute; an old epoch is freed
//! when its last pinned reader releases it (plain [`Arc`] reclamation).
//!
//! **Exactness contract.** Every published epoch's clustering is
//! *bit-identical* (`==` on [`Clustering`]) to a batch
//! `Runner`/[`StreamingMuDbscan::from_dataset`] run on the points live
//! at that epoch, in insertion order. Two mechanisms pay for this:
//!
//! * inserts are applied incrementally, then the writer publishes
//!   [`StreamingMuDbscan::canonical_snapshot`], which re-resolves
//!   border ties to the batch answer;
//! * deletions and TTL expiries are applied per-op through the
//!   engine's exact [`StreamingMuDbscan::try_remove`] — a
//!   **micro-cluster-local repair** that tombstones the point, demotes
//!   cores falling below MinPts, and replays the union rules only over
//!   the affected component. When a removal's blast radius exceeds the
//!   repair budget ([`ServeOptions::repair_budget`]), the writer falls
//!   back to one **exact full rebuild** over the compacted live set
//!   (the parallel bulk loader), so worst cases stay exact and cheap
//!   cases stay local. A rebuild is also used to compact tombstones
//!   once they outnumber the live points.
//!
//! **Epochs and TTL.** The epoch counter is a deterministic logical
//! clock: it advances by one per applied batch, never by wall time. A
//! point inserted in epoch `e` with `ttl = d` (rounded up to ≥ 1, see
//! [`ServeOp::insert_ttl`]) is excluded from every snapshot of epoch
//! ≥ `e + d`. Deletes refer to the external ids handed out by
//! [`ServeHandle::ingest`] and apply to points live at the start of
//! the batch; unknown or already-dead ids are counted
//! (`serve/deletes_ignored`) and skipped, because ingest is
//! asynchronous and cannot report per-op errors.
//!
//! Per-operation latencies are recorded into `obs` histograms
//! (`serve/ingest_batch_us`, `serve/publish_us`, `serve/query_us`,
//! `serve/membership_us`) when collection is enabled — the bench
//! harness reports their p50/p99. The removal path records its own
//! census: `serve/repairs` and `serve/repair_touched_points` for the
//! local path, `serve/fallback_rebuilds` for budget-exceeded rebuilds,
//! and `serve/rebuilds` for full rebuilds of any cause (fallback or
//! tombstone compaction).
//!
//! **Live telemetry.** Independently of the global `obs` switch, every
//! engine owns an [`obs::Registry`]: the writer feeds it the same
//! per-epoch census (one batched update per epoch, so counters never
//! tear) and readers feed it query/membership latencies.
//! [`ServeHandle::stats`] polls it through a shared
//! [`obs::WindowCursor`] — each poll returns the delta since the
//! previous poll plus the cumulative totals, and the windows of any
//! poll sequence sum back to the cumulative counters bit-identically
//! (the window algebra pinned in `obs::live`). The writer also digests
//! every epoch into a bounded [`obs::FlightRecorder`]; on a writer
//! panic, a poisoned snapshot lock, or detected exactness drift
//! ([`ServeOptions::self_check_every`]) the ring is dumped as a
//! schema'd postmortem artifact under [`ServeOptions::postmortem_dir`]
//! (`results/postmortem/` by default), and [`ServeHandle::dump_postmortem`]
//! does the same on demand.
//!
//! Entry points: `Runner::serve` on the facade (preferred; see
//! `docs/SERVING.md`) or [`ServingMuDbscan::spawn`] directly.

use crate::incremental::{RemoveOutcome, StreamingMuDbscan};
use geom::{Dataset, DbscanParams, PointId};
use metrics::Counters;
use mudbscan::Clustering;
use rtree::{RTree, RTreeConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// External id of a served point: assigned at [`ServeHandle::ingest`]
/// time, stable across rebuilds (internal [`PointId`]s are not).
pub type ExtId = u64;

/// One operation inside an ingest batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOp {
    /// Insert a point, optionally expiring after `ttl` epochs (rounded
    /// up to ≥ 1): inserted in epoch `e`, it is live in snapshots
    /// `e .. e + ttl` and gone from epoch `e + ttl` on.
    Insert {
        /// Point coordinates (must match the engine dimension).
        coords: Vec<f64>,
        /// Expiry in logical epochs, `None` to live forever.
        ttl: Option<u64>,
    },
    /// Delete a previously ingested point by external id. Unknown or
    /// already-dead ids are skipped (and counted under
    /// `serve/deletes_ignored`).
    Delete {
        /// The external id returned by [`ServeHandle::ingest`].
        id: ExtId,
    },
}

impl ServeOp {
    /// An insert with no expiry.
    pub fn insert(coords: Vec<f64>) -> Self {
        ServeOp::Insert { coords, ttl: None }
    }

    /// An insert expiring `ttl` epochs after its batch.
    ///
    /// **Edge semantics.** `ttl` is *rounded up to 1*: a point cannot
    /// both be inserted and expire inside the same batch, because
    /// expiries run at the *start* of a batch (before its inserts), so
    /// the earliest an insert can die is the start of the *next* epoch.
    /// `insert_ttl(c, 0)` therefore behaves exactly like
    /// `insert_ttl(c, 1)` — live in its own epoch, gone from the next.
    /// At the other edge, the expiry epoch saturates: a huge `ttl`
    /// (e.g. `u64::MAX`) never overflows and simply means "lives
    /// forever", identical to [`ServeOp::insert`].
    pub fn insert_ttl(coords: Vec<f64>, ttl: u64) -> Self {
        ServeOp::Insert { coords, ttl: Some(ttl) }
    }

    /// A delete by external id.
    pub fn delete(id: ExtId) -> Self {
        ServeOp::Delete { id }
    }
}

/// Tuning knobs for the serving writer ([`ServingMuDbscan::spawn_with`]).
///
/// The defaults are what [`ServingMuDbscan::spawn`] uses; every option
/// only affects *performance or telemetry*, never published results —
/// the exactness contract holds for any configuration. (The two
/// `*_at` fault-injection hooks deliberately break the *service*, not
/// its answers: they exist so the postmortem path is testable.)
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Largest repair region (surviving points replayed) a single
    /// removal may trigger before the writer falls back to a full
    /// rebuild of the epoch.
    ///
    /// * `None` — adaptive default: half the live set, floor 256.
    /// * `Some(0)` — local repair disabled: every batch containing a
    ///   removal pays one full rebuild (the pre-repair behaviour; used
    ///   by the conformance suite and the bench baseline arm).
    /// * `Some(k)` — fixed threshold of `k` surviving points.
    pub repair_budget: Option<usize>,
    /// Flight-recorder capacity: how many recent entries (epoch digests
    /// and notes) the postmortem ring retains. Clamped to ≥ 1.
    /// Default 256.
    pub recorder_capacity: usize,
    /// Where postmortem artifacts are written (`None` → the repo-local
    /// `results/postmortem/`). The directory is created on first dump.
    pub postmortem_dir: Option<PathBuf>,
    /// Run the engine's exactness self-check
    /// ([`StreamingMuDbscan::verify_against_batch`]) every `k` epochs
    /// (`Some(k)`, `k ≥ 1`). A failed check counts
    /// `serve/exactness_drift` in the live registry and dumps a
    /// postmortem. The check costs a full batch re-cluster, so it is
    /// off (`None`) by default — an auditing knob, not a production
    /// default.
    pub self_check_every: Option<u64>,
    /// Fault injection: treat this epoch's self-check as having
    /// detected drift even though the engine is exact, exercising the
    /// full drift-dump path. Test/CI hook; leave `None`.
    pub force_drift_at: Option<u64>,
    /// Fault injection: panic the writer thread at the start of this
    /// epoch, exercising the panic-dump path (subsequent ingest/drain
    /// calls return [`ServeError::WriterGone`]). Test/CI hook; leave
    /// `None`.
    pub panic_at_epoch: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            repair_budget: None,
            recorder_capacity: 256,
            postmortem_dir: None,
            self_check_every: None,
            force_drift_at: None,
            panic_at_epoch: None,
        }
    }
}

impl ServeOptions {
    /// The effective repair budget at a given live population.
    /// `Some(0)` disables repair entirely.
    fn budget_at(&self, live: usize) -> usize {
        self.repair_budget.unwrap_or_else(|| (live / 2).max(256))
    }
}

/// Cluster membership of one live point inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Membership {
    /// Dense cluster label of the snapshot's clustering, `None` for
    /// noise.
    pub cluster: Option<u32>,
    /// Whether the point is a core point.
    pub is_core: bool,
}

/// Everything the serving layer can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Coordinates of the wrong dimensionality were passed to ingest or
    /// query.
    DimensionMismatch {
        /// The engine dimension fixed at spawn time.
        expected: usize,
        /// The offending slice length.
        got: usize,
    },
    /// The writer thread is gone: every handle was dropped and
    /// re-created impossibly, or the writer panicked. Pinned snapshots
    /// remain readable; ingest/drain cannot proceed.
    WriterGone,
    /// A postmortem artifact could not be written (I/O failure on
    /// [`ServeOptions::postmortem_dir`]). Carries the rendered I/O
    /// error; the engine itself keeps serving.
    Postmortem {
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: engine serves {expected}-d points, got {got}-d")
            }
            ServeError::WriterGone => write!(f, "the serving writer thread has shut down"),
            ServeError::Postmortem { message } => {
                write!(f, "failed to write the postmortem artifact: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// An immutable published epoch: the live points, their canonical
/// clustering, and an R-tree for ε-queries. Cheap to pin (one `Arc`
/// clone) and safe to read from any thread; it never changes after
/// publication.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    params: DbscanParams,
    data: Dataset,
    ext: Vec<ExtId>,
    lookup: HashMap<ExtId, PointId>,
    clustering: Clustering,
    /// The writer's live-point R-tree, shared by reference: items are
    /// *writer-internal* ids (mapped through `compact`), and the `Arc`
    /// means epochs whose tree did not structurally change publish the
    /// very same index instead of re-bulk-loading it.
    index: Arc<RTree>,
    /// Writer-internal id → position in `data`/`ext` (`u32::MAX` for
    /// tombstoned ids, which the index never returns).
    compact: Vec<u32>,
}

impl Snapshot {
    fn empty(dim: usize, params: DbscanParams) -> Self {
        Snapshot {
            epoch: 0,
            params,
            data: Dataset::empty(dim),
            ext: Vec::new(),
            lookup: HashMap::new(),
            clustering: Clustering::from_union_find(&mut unionfind::UnionFind::new(0), Vec::new()),
            index: Arc::new(RTree::new(dim)),
            compact: Vec::new(),
        }
    }

    /// The logical epoch this snapshot was published at (0 = the empty
    /// pre-ingest snapshot; +1 per applied batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The density parameters the engine serves.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no points are live.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The live points, in insertion order. Running a batch `Runner` on
    /// this dataset reproduces [`Self::clustering`] bit-identically —
    /// that is the serving exactness contract, pinned by the
    /// conformance suite.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// External ids of the live points, parallel to [`Self::dataset`].
    pub fn live_ids(&self) -> &[ExtId] {
        &self.ext
    }

    /// The canonical clustering of the live points (labels indexed by
    /// dataset position, not external id).
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// External ids strictly within ε of `coords`, in insertion order.
    pub fn query(&self, coords: &[f64]) -> Result<Vec<ExtId>, ServeError> {
        if coords.len() != self.data.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.data.dim(),
                got: coords.len(),
            });
        }
        let mut hits: Vec<PointId> = Vec::new();
        self.index.search_sphere(coords, self.params.eps, |p| hits.push(p));
        // Writer-internal ids are monotone in insertion order, so
        // sorting them sorts the compacted (and external) ids too.
        hits.sort_unstable();
        Ok(hits.into_iter().map(|p| self.ext[self.compact[p as usize] as usize]).collect())
    }

    /// Cluster membership of a live point, `None` when the id is
    /// unknown, deleted, or expired in this epoch.
    pub fn membership(&self, id: ExtId) -> Option<Membership> {
        let p = *self.lookup.get(&id)?;
        let label = self.clustering.labels[p as usize];
        Some(Membership {
            cluster: (label != mudbscan::NOISE).then_some(label),
            is_core: self.clustering.is_core[p as usize],
        })
    }
}

/// What [`ServeHandle::drain`] returns: the snapshot current once every
/// previously enqueued batch was applied, plus a copy of the writer's
/// operation counters up to that point.
#[derive(Debug)]
pub struct Drained {
    /// The post-drain snapshot (also installed as current).
    pub snapshot: Arc<Snapshot>,
    /// Writer-side operation counters (queries, distances, unions)
    /// accumulated by the streaming engine, rebuilds included.
    pub counters: Counters,
}

enum Cmd {
    Batch { ops: Vec<ServeOp>, ids: Vec<ExtId> },
    Flush { ack: Sender<Drained> },
}

struct Shared {
    dim: usize,
    current: Mutex<Arc<Snapshot>>,
    next_id: AtomicU64,
    /// Live-metrics registry: written by the writer (per-epoch census,
    /// one batched update) and readers (per-op latencies), polled by
    /// [`ServeHandle::stats`]. Always on — independent of the global
    /// `obs` switch.
    registry: obs::Registry,
    /// The engine-wide window cursor behind [`ServeHandle::stats`]: all
    /// pollers share it, so their windows partition the metric stream.
    cursor: Mutex<obs::WindowCursor>,
    /// Flight recorder of recent epoch digests and fault notes.
    recorder: obs::FlightRecorder,
    /// Where fault dumps and on-demand postmortems land.
    postmortem_dir: PathBuf,
}

/// One poll of a serving engine's live telemetry
/// ([`ServeHandle::stats`]): the published state plus the metric window
/// since the previous poll and the cumulative totals, all coherent.
///
/// The windows of successive polls (across *all* handles — the cursor
/// is engine-wide) partition the metric stream: merging them
/// reproduces `cumulative`'s counters and histograms bit-identically.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Epoch of the snapshot current at poll time.
    pub epoch: u64,
    /// Live points in that snapshot.
    pub live_points: u64,
    /// Clusters in that snapshot.
    pub clusters: u64,
    /// Metrics accumulated since the previous `stats()` poll
    /// (everything since spawn, on the engine's first poll).
    pub window: obs::Report,
    /// Cumulative metrics since spawn, as of this poll.
    pub cumulative: obs::Report,
}

impl ServeStats {
    /// Local repairs performed since spawn.
    pub fn repairs(&self) -> u64 {
        self.cumulative.count("serve/repairs")
    }

    /// Budget-exceeded fallback rebuilds since spawn.
    pub fn fallback_rebuilds(&self) -> u64 {
        self.cumulative.count("serve/fallback_rebuilds")
    }

    /// Exactness-drift detections since spawn (0 unless a self-check
    /// failed — see [`ServeOptions::self_check_every`]).
    pub fn drift_detections(&self) -> u64 {
        self.cumulative.count("serve/exactness_drift")
    }

    /// The `q`-quantile (in [0, 1]) of a latency histogram **within
    /// this window** — e.g. `window_percentile("serve/query_us", 0.99)`
    /// for the p99 query latency since the last poll. 0 when the
    /// histogram has no samples in the window.
    pub fn window_percentile(&self, hist: &str, q: f64) -> u64 {
        self.window.hist(hist).map_or(0, |h| h.percentile(q))
    }

    /// The cumulative totals as a Prometheus-style text exposition
    /// (prefix `mudbscan`), ready to serve from a `/metrics` endpoint.
    pub fn render_prom(&self) -> String {
        obs::render_prom(&self.cumulative, "mudbscan")
    }
}

/// Joins the writer thread when the last [`ServeHandle`] drops. The
/// handle's command sender is declared before this guard, so by the
/// time the final guard drops the channel is closed and the writer is
/// already exiting.
struct WriterGuard {
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for WriterGuard {
    fn drop(&mut self) {
        // Poison recovery is uniform across the serving layer: a panic
        // in some other thread must not leak the writer thread here.
        let mut slot = self.handle.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = slot.take() {
            let _ = h.join();
        }
    }
}

/// A clonable, thread-safe handle to a running [`ServingMuDbscan`].
///
/// Ingest enqueues to the writer and returns immediately with the
/// assigned external ids; queries and membership lookups pin the
/// current [`Snapshot`] and answer from it without ever waiting on
/// writer compute. Dropping the last handle shuts the writer down and
/// joins it.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    // Field order matters: `tx` must drop before `writer` so the last
    // handle closes the channel (stopping the writer) before joining.
    tx: Sender<Cmd>,
    // Held only for its drop-on-last-handle join; never read.
    #[allow(dead_code)]
    writer: Arc<WriterGuard>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle").field("dim", &self.shared.dim).finish_non_exhaustive()
    }
}

impl ServeHandle {
    /// Enqueue one batch of operations; the batch becomes one epoch.
    /// Returns the external ids assigned to the batch's inserts, in op
    /// order, without waiting for the batch to be applied (see
    /// [`Self::drain`] for the rendezvous).
    pub fn ingest(&self, ops: Vec<ServeOp>) -> Result<Vec<ExtId>, ServeError> {
        let mut ids = Vec::new();
        for op in &ops {
            if let ServeOp::Insert { coords, .. } = op {
                if coords.len() != self.shared.dim {
                    return Err(ServeError::DimensionMismatch {
                        expected: self.shared.dim,
                        got: coords.len(),
                    });
                }
                ids.push(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
            }
        }
        self.tx.send(Cmd::Batch { ops, ids: ids.clone() }).map_err(|_| ServeError::WriterGone)?;
        Ok(ids)
    }

    /// Pin the current snapshot: one `Arc` clone under a lock held for
    /// two reference-count operations — readers never wait on writer
    /// compute, and the epoch stays alive (and immutable) for as long
    /// as the returned `Arc` does.
    pub fn pin(&self) -> Arc<Snapshot> {
        self.shared.current.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The epoch of the currently published snapshot.
    pub fn snapshot_epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// ε-neighbourhood lookup against the current snapshot: external
    /// ids strictly within ε of `coords`. Records `serve/query_us`
    /// (live registry always, global `obs` when enabled).
    pub fn query(&self, coords: &[f64]) -> Result<Vec<ExtId>, ServeError> {
        let t = Instant::now();
        let out = self.pin().query(coords);
        let us = t.elapsed().as_micros() as u64;
        obs::record_hist("serve/query_us", us);
        self.shared.registry.record_hist("serve/query_us", us);
        out
    }

    /// Cluster membership of `id` in the current snapshot (`None` for
    /// unknown, deleted, or expired ids). Records `serve/membership_us`
    /// (live registry always, global `obs` when enabled).
    pub fn membership(&self, id: ExtId) -> Option<Membership> {
        let t = Instant::now();
        let out = self.pin().membership(id);
        let us = t.elapsed().as_micros() as u64;
        obs::record_hist("serve/membership_us", us);
        self.shared.registry.record_hist("serve/membership_us", us);
        out
    }

    /// Poll the live telemetry: the published epoch's headline numbers
    /// plus the metric window since the previous `stats()` call (on any
    /// handle — the cursor is engine-wide) and the cumulative totals.
    /// Non-draining and cheap; safe to call from a dashboard loop while
    /// readers and the writer race. The windows of all polls sum back
    /// to the cumulative counters bit-identically.
    pub fn stats(&self) -> ServeStats {
        let snap = self.pin();
        let live = self
            .shared
            .cursor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .poll(&self.shared.registry);
        ServeStats {
            epoch: snap.epoch(),
            live_points: snap.len() as u64,
            clusters: snap.clustering().n_clusters as u64,
            window: live.window,
            cumulative: live.cumulative,
        }
    }

    /// Dump the flight recorder to a postmortem artifact on demand
    /// (reason `"on_demand"`) and return its path. The writer dumps
    /// automatically on panic, poisoned snapshot lock, and detected
    /// exactness drift; this is for capturing state while healthy.
    pub fn dump_postmortem(&self) -> Result<PathBuf, ServeError> {
        self.shared
            .recorder
            .dump_to_dir(&self.shared.postmortem_dir, "on_demand")
            .map_err(|e| ServeError::Postmortem { message: e.to_string() })
    }

    /// Rendezvous with the writer: blocks until every batch enqueued
    /// before this call has been applied and published, then returns
    /// that snapshot plus the writer's counters. Batches enqueued
    /// concurrently by other handles may or may not be included.
    pub fn drain(&self) -> Result<Drained, ServeError> {
        let (ack, rx) = mpsc::channel();
        self.tx.send(Cmd::Flush { ack }).map_err(|_| ServeError::WriterGone)?;
        rx.recv().map_err(|_| ServeError::WriterGone)
    }

    /// Drain, then drop this handle. When it is the last handle the
    /// writer thread exits and is joined before this returns.
    pub fn shutdown(self) -> Result<Drained, ServeError> {
        let out = self.drain()?;
        drop(self);
        Ok(out)
    }
}

/// The writer-side engine: owns the private [`StreamingMuDbscan`] plus
/// the external-id / TTL bookkeeping, applies one enqueued batch per
/// epoch, and publishes immutable [`Snapshot`]s. Constructed only via
/// [`ServingMuDbscan::spawn`], which moves it onto its writer thread.
pub struct ServingMuDbscan {
    shared: Arc<Shared>,
    rx: Receiver<Cmd>,
    stream: StreamingMuDbscan,
    opts: ServeOptions,
    /// Internal id → external id, parallel to the stream's dataset
    /// (tombstoned ids keep their slot until a compacting rebuild).
    ext: Vec<ExtId>,
    /// Internal id → first epoch the point is dead in (`u64::MAX` =
    /// lives forever).
    expire_at: Vec<u64>,
    /// External id → internal id, live points only.
    lookup: HashMap<ExtId, PointId>,
    /// Persistent R-tree over the live points (writer-internal ids),
    /// maintained per-op — inserts insert, repaired removals remove —
    /// and shared with every published [`Snapshot`] by `Arc`.
    /// [`Arc::make_mut`] gives copy-on-write: the first mutation after
    /// a publish clones once, epochs without structural change republish
    /// the same tree, and nothing ever re-bulk-loads except a rebuild.
    index: Arc<RTree>,
    epoch: u64,
    /// One-shot latch: the first poisoned-lock publish dumps a
    /// postmortem; later publishes through the same poisoned lock
    /// proceed silently (the fault was already recorded).
    poison_dumped: bool,
}

/// Armed for the writer thread's whole life: when the writer unwinds
/// (a real bug or [`ServeOptions::panic_at_epoch`]), the probe's `Drop`
/// runs during the panic and dumps the flight recorder so the last
/// epochs' digests survive the crash.
struct PanicProbe {
    shared: Arc<Shared>,
}

impl Drop for PanicProbe {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.recorder.note("serving writer panicked");
            let _ = self.shared.recorder.dump_to_dir(&self.shared.postmortem_dir, "writer_panic");
        }
    }
}

impl ServingMuDbscan {
    /// Spawn the writer thread for a `dim`-dimensional engine and
    /// return the first handle to it. Prefer `Runner::serve` on the
    /// facade, which validates the configuration first.
    pub fn spawn(dim: usize, params: DbscanParams) -> ServeHandle {
        Self::spawn_with(dim, params, ServeOptions::default())
    }

    /// [`Self::spawn`] with explicit tuning knobs — results are
    /// identical for any [`ServeOptions`], only the repair/rebuild
    /// trade-off changes.
    pub fn spawn_with(dim: usize, params: DbscanParams, opts: ServeOptions) -> ServeHandle {
        assert!(dim > 0, "dimension must be positive");
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            dim,
            current: Mutex::new(Arc::new(Snapshot::empty(dim, params))),
            next_id: AtomicU64::new(0),
            registry: obs::Registry::new(),
            cursor: Mutex::new(obs::WindowCursor::new()),
            recorder: obs::FlightRecorder::new(opts.recorder_capacity),
            postmortem_dir: opts
                .postmortem_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from("results/postmortem")),
        });
        let writer = ServingMuDbscan {
            shared: Arc::clone(&shared),
            rx,
            stream: StreamingMuDbscan::empty(dim, params),
            opts,
            ext: Vec::new(),
            expire_at: Vec::new(),
            lookup: HashMap::new(),
            index: Arc::new(RTree::new(dim)),
            epoch: 0,
            poison_dumped: false,
        };
        let handle = std::thread::Builder::new()
            .name("mudbscan-serve-writer".into())
            .spawn(move || writer.run())
            .expect("failed to spawn the serving writer thread");
        ServeHandle {
            shared,
            tx,
            writer: Arc::new(WriterGuard { handle: Mutex::new(Some(handle)) }),
        }
    }

    fn run(mut self) {
        let probe = PanicProbe { shared: Arc::clone(&self.shared) };
        while let Ok(cmd) = self.rx.recv() {
            match cmd {
                Cmd::Batch { ops, ids } => self.apply(ops, ids, Instant::now()),
                Cmd::Flush { ack } => {
                    let counters = Counters::new();
                    counters.absorb(self.stream.counters());
                    let snapshot =
                        self.shared.current.lock().unwrap_or_else(|e| e.into_inner()).clone();
                    let _ = ack.send(Drained { snapshot, counters });
                }
            }
        }
        drop(probe); // normal exit: the probe's Drop is a no-op
    }

    /// Apply one batch as one epoch: expiries and deletes first
    /// (against the points live at the start of the batch), then
    /// inserts, then publish.
    ///
    /// Removals go through the engine's local repair
    /// ([`StreamingMuDbscan::try_remove`]) one op at a time; the first
    /// removal whose blast radius exceeds the repair budget flips the
    /// whole epoch to one compacting full rebuild that also swallows
    /// every remaining removal. A rebuild is likewise forced when
    /// tombstones pile up past the live population (compaction).
    fn apply(&mut self, ops: Vec<ServeOp>, ids: Vec<ExtId>, started: Instant) {
        self.epoch += 1;
        if self.opts.panic_at_epoch == Some(self.epoch) {
            panic!("induced writer panic at epoch {} (ServeOptions::panic_at_epoch)", self.epoch);
        }

        let n = self.stream.len();
        // Removal set for this epoch: expiries first, then explicit
        // deletes, in op order — `marked` both dedupes (a delete of an
        // id expiring this very epoch counts as ignored) and, on
        // fallback, tells the rebuild which points to drop.
        let mut marked = vec![false; n];
        let mut removals: Vec<PointId> = Vec::new();
        let mut expiries = 0u64;
        let mut deletes = 0u64;
        let mut ignored = 0u64;
        for (p, &at) in self.expire_at.iter().enumerate() {
            if at <= self.epoch && self.stream.is_live(p as PointId) {
                marked[p] = true;
                removals.push(p as PointId);
                expiries += 1;
            }
        }
        for op in &ops {
            if let ServeOp::Delete { id } = op {
                match self.lookup.get(id) {
                    Some(&p) if !marked[p as usize] => {
                        marked[p as usize] = true;
                        removals.push(p);
                        deletes += 1;
                    }
                    _ => ignored += 1,
                }
            }
        }

        let mut repairs = 0u64;
        let mut touched_total = 0u64;
        let mut fell_back = false;
        let mut compacted = false;
        if !removals.is_empty() {
            let budget = self.opts.budget_at(self.stream.live_len());
            for &p in &removals {
                match self.stream.try_remove(p, budget) {
                    RemoveOutcome::Removed { touched } => {
                        repairs += 1;
                        touched_total += touched as u64;
                        self.lookup.remove(&self.ext[p as usize]);
                        let coords = self.stream.point(p).to_vec();
                        Arc::make_mut(&mut self.index).remove_point(p, &coords);
                    }
                    RemoveOutcome::ExceedsBudget { .. } => {
                        // One full rebuild absorbs this and every
                        // remaining removal (`marked` still flags them).
                        self.rebuild(&marked);
                        obs::record_count("serve/fallback_rebuilds", 1);
                        obs::record_count("serve/rebuilds", 1);
                        fell_back = true;
                        break;
                    }
                }
            }
            obs::record_count("serve/repairs", repairs);
            obs::record_count("serve/repair_touched_points", touched_total);
            // Compact once tombstones outnumber the live points (floor
            // 64 so tiny workloads don't rebuild on every churn).
            if !fell_back
                && self.stream.dead_len() >= 64
                && self.stream.dead_len() >= self.stream.live_len()
            {
                self.rebuild(&[]);
                obs::record_count("serve/rebuilds", 1);
                compacted = true;
            }
        }
        obs::record_count("serve/expiries", expiries);
        obs::record_count("serve/deletes", deletes);
        obs::record_count("serve/deletes_ignored", ignored);

        let mut next = ids.into_iter();
        let mut inserts = 0u64;
        for op in ops {
            if let ServeOp::Insert { coords, ttl } = op {
                let ext = next.next().expect("one pre-assigned id per insert");
                let p = self.stream.insert(&coords);
                // A desynced ext-id table would silently misroute every
                // later delete; fail fast in release builds too.
                assert_eq!(
                    p as usize,
                    self.ext.len(),
                    "serving ext-id table desynced from engine internal ids"
                );
                self.ext.push(ext);
                // TTL is rounded up to >= 1 (an insert cannot expire in
                // its own epoch) and saturates at "lives forever" — see
                // `ServeOp::insert_ttl`.
                self.expire_at.push(ttl.map_or(u64::MAX, |d| self.epoch.saturating_add(d.max(1))));
                self.lookup.insert(ext, p);
                Arc::make_mut(&mut self.index).insert_point(p, &coords);
                inserts += 1;
            }
        }
        obs::record_count("serve/inserts", inserts);

        let publish_us = self.publish();

        // Feed the live registry in one batched update: a racing
        // `stats()` poll sees this epoch's whole census or none of it.
        let rebuilds = u64::from(fell_back) + u64::from(compacted);
        self.shared.registry.add_counts(&[
            ("serve/epochs", 1),
            ("serve/inserts", inserts),
            ("serve/deletes", deletes),
            ("serve/deletes_ignored", ignored),
            ("serve/expiries", expiries),
            ("serve/repairs", repairs),
            ("serve/repair_touched_points", touched_total),
            ("serve/rebuilds", rebuilds),
            ("serve/fallback_rebuilds", u64::from(fell_back)),
        ]);

        let ingest_us = started.elapsed().as_micros() as u64;
        obs::record_hist("serve/ingest_batch_us", ingest_us);
        self.shared.registry.record_hist("serve/ingest_batch_us", ingest_us);
        self.shared.recorder.record_epoch(obs::EpochDigest {
            epoch: self.epoch,
            live_points: self.stream.live_len() as u64,
            inserts,
            deletes,
            deletes_ignored: ignored,
            expiries,
            repairs,
            repair_touched_points: touched_total,
            decision: if fell_back {
                obs::RemovalDecision::FallbackRebuild
            } else if compacted {
                obs::RemovalDecision::CompactionRebuild
            } else if !removals.is_empty() {
                obs::RemovalDecision::Repaired
            } else {
                obs::RemovalDecision::None
            },
            ingest_us,
            publish_us,
        });

        // Scheduled (or injected) exactness self-check, after the digest
        // so a drift dump carries this epoch's record too.
        let forced = self.opts.force_drift_at == Some(self.epoch);
        let scheduled =
            self.opts.self_check_every.is_some_and(|k| k > 0 && self.epoch.is_multiple_of(k));
        if forced || (scheduled && !self.stream.verify_against_batch()) {
            self.shared.registry.add_count("serve/exactness_drift", 1);
            self.shared.recorder.note(&format!("exactness drift detected at epoch {}", self.epoch));
            let _ =
                self.shared.recorder.dump_to_dir(&self.shared.postmortem_dir, "exactness_drift");
        }
    }

    /// Exact compacting rebuild: the surviving live points — minus any
    /// flagged in `exclude` (pending removals on the fallback path) —
    /// go back through the parallel bulk loader in insertion order,
    /// which resets the internal id space (no tombstones) and
    /// re-bulk-loads the writer index.
    fn rebuild(&mut self, exclude: &[bool]) {
        let dim = self.shared.dim;
        let mut data = Dataset::empty(dim);
        let mut ext = Vec::new();
        let mut expire_at = Vec::new();
        for p in 0..self.stream.len() {
            if !self.stream.is_live(p as PointId) || exclude.get(p).copied().unwrap_or(false) {
                self.lookup.remove(&self.ext[p]);
                continue;
            }
            data.push(self.stream.point(p as PointId));
            ext.push(self.ext[p]);
            expire_at.push(self.expire_at[p]);
        }
        let counters = Counters::new();
        counters.absorb(self.stream.counters());
        self.stream = StreamingMuDbscan::from_dataset(&data, self.stream.params());
        // Carry the pre-rebuild operation counts forward so `drain`
        // reports totals across the engine's whole life.
        self.stream.counters().absorb(&counters);
        self.lookup = ext.iter().enumerate().map(|(p, &e)| (e, p as PointId)).collect();
        self.ext = ext;
        self.expire_at = expire_at;
        self.index = Arc::new(RTree::bulk_load_points(
            dim,
            RTreeConfig::default(),
            data.iter().map(|(p, c)| (p, c.to_vec())),
        ));
    }

    /// Publish the epoch snapshot and return the publish latency in
    /// microseconds (also recorded into the histograms).
    fn publish(&mut self) -> u64 {
        let t = Instant::now();
        let n = self.stream.len();
        let dim = self.shared.dim;
        // Compact the live points (insertion order) for the snapshot;
        // the shared index keeps writer-internal ids and maps through
        // `compact` at query time.
        let mut data = Dataset::empty(dim);
        let mut ext = Vec::with_capacity(self.stream.live_len());
        let mut compact = vec![u32::MAX; n];
        for (p, slot) in compact.iter_mut().enumerate() {
            if !self.stream.is_live(p as PointId) {
                continue;
            }
            *slot = data.push(self.stream.point(p as PointId));
            ext.push(self.ext[p]);
        }
        let lookup = ext.iter().enumerate().map(|(i, &e)| (e, i as PointId)).collect();
        let snap = Arc::new(Snapshot {
            epoch: self.epoch,
            params: self.stream.params(),
            clustering: self.stream.canonical_snapshot(),
            ext,
            lookup,
            data,
            index: Arc::clone(&self.index),
            compact,
        });
        match self.shared.current.lock() {
            Ok(mut g) => *g = snap,
            Err(e) => {
                // A reader panicked while holding the snapshot lock.
                // Publishing proceeds (the data is fine), but the fault
                // is worth a postmortem — once.
                if !self.poison_dumped {
                    self.poison_dumped = true;
                    self.shared
                        .recorder
                        .note(&format!("snapshot lock poisoned; publishing epoch {}", self.epoch));
                    let _ = self
                        .shared
                        .recorder
                        .dump_to_dir(&self.shared.postmortem_dir, "poisoned_lock");
                }
                *e.into_inner() = snap;
            }
        }
        obs::record_count("serve/epochs", 1);
        let us = t.elapsed().as_micros() as u64;
        obs::record_hist("serve/publish_us", us);
        self.shared.registry.record_hist("serve/publish_us", us);
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn params() -> DbscanParams {
        DbscanParams::new(1.0, 3)
    }

    fn batch_oracle(data: &Dataset, p: DbscanParams) -> Clustering {
        let mut s = StreamingMuDbscan::from_dataset(data, p);
        s.snapshot()
    }

    #[test]
    fn empty_engine_serves_epoch_zero() {
        let h = ServingMuDbscan::spawn(2, params());
        let snap = h.pin();
        assert_eq!(snap.epoch(), 0);
        assert!(snap.is_empty());
        assert_eq!(h.query(&[0.0, 0.0]).unwrap(), Vec::<ExtId>::new());
        assert_eq!(h.membership(7), None);
    }

    #[test]
    fn ingest_then_drain_matches_batch() {
        let h = ServingMuDbscan::spawn(1, params());
        let rows = [[0.0], [0.5], [-0.5], [10.0]];
        let ids = h.ingest(rows.iter().map(|r| ServeOp::insert(r.to_vec())).collect()).unwrap();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.epoch(), 1);
        let want = batch_oracle(d.snapshot.dataset(), params());
        assert_eq!(*d.snapshot.clustering(), want, "epoch not bit-identical to batch");
        assert_eq!(h.membership(0), Some(Membership { cluster: Some(0), is_core: true }));
        assert_eq!(h.membership(3), Some(Membership { cluster: None, is_core: false }));
        assert_eq!(h.query(&[0.1]).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn every_epoch_is_bit_identical_to_its_prefix_batch() {
        let h = ServingMuDbscan::spawn(2, params());
        let batches: Vec<Vec<Vec<f64>>> = vec![
            vec![vec![0.0, 0.0], vec![0.5, 0.0], vec![0.0, 0.5]],
            vec![vec![5.0, 5.0], vec![5.5, 5.0]],
            vec![vec![5.0, 5.5], vec![0.5, 0.5], vec![9.0, -9.0]],
        ];
        for batch in batches {
            h.ingest(batch.into_iter().map(ServeOp::insert).collect()).unwrap();
            let d = h.drain().unwrap();
            let want = batch_oracle(d.snapshot.dataset(), params());
            assert_eq!(*d.snapshot.clustering(), want, "epoch {}", d.snapshot.epoch());
            let rep = check_exact(
                d.snapshot.clustering(),
                &naive_dbscan(d.snapshot.dataset(), &params()),
                d.snapshot.dataset(),
                &params(),
            );
            assert!(rep.is_exact(), "epoch {}: {rep:?}", d.snapshot.epoch());
        }
        assert_eq!(h.snapshot_epoch(), 3);
    }

    #[test]
    fn deletes_remove_points_and_stay_exact() {
        let h = ServingMuDbscan::spawn(1, params());
        let ids = h
            .ingest(
                [[0.0], [0.5], [-0.5], [0.2]].iter().map(|r| ServeOp::insert(r.to_vec())).collect(),
            )
            .unwrap();
        assert_eq!(h.drain().unwrap().snapshot.clustering().n_clusters, 1);
        // Delete two members; the survivors can no longer form a cluster.
        h.ingest(vec![ServeOp::delete(ids[1]), ServeOp::delete(ids[2])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 2);
        assert_eq!(d.snapshot.clustering().n_clusters, 0);
        assert_eq!(d.snapshot.membership(ids[1]), None);
        assert!(d.snapshot.membership(ids[0]).is_some());
        let want = batch_oracle(d.snapshot.dataset(), params());
        assert_eq!(*d.snapshot.clustering(), want);
        // Deleting again is an ignored no-op, not an error.
        h.ingest(vec![ServeOp::delete(ids[1])]).unwrap();
        assert_eq!(h.drain().unwrap().snapshot.len(), 2);
    }

    #[test]
    fn ttl_expires_on_the_logical_clock() {
        let h = ServingMuDbscan::spawn(1, params());
        // Epoch 1: a point with ttl 2 (dead from epoch 3 on) + one forever.
        let ids =
            h.ingest(vec![ServeOp::insert_ttl(vec![0.0], 2), ServeOp::insert(vec![0.5])]).unwrap();
        assert_eq!(h.drain().unwrap().snapshot.len(), 2);
        // Epoch 2: still live.
        h.ingest(vec![ServeOp::insert(vec![-0.5])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 3);
        assert_eq!(d.snapshot.clustering().n_clusters, 1);
        // Epoch 3: the TTL point expires before the batch's insert.
        h.ingest(vec![ServeOp::insert(vec![9.0])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 3);
        assert_eq!(d.snapshot.membership(ids[0]), None);
        let want = batch_oracle(d.snapshot.dataset(), params());
        assert_eq!(*d.snapshot.clustering(), want);
    }

    #[test]
    fn pinned_snapshots_survive_later_epochs() {
        let h = ServingMuDbscan::spawn(1, params());
        h.ingest(vec![ServeOp::insert(vec![0.0])]).unwrap();
        h.drain().unwrap();
        let pinned = h.pin();
        h.ingest(vec![ServeOp::insert(vec![0.5]), ServeOp::insert(vec![-0.5])]).unwrap();
        h.drain().unwrap();
        // The pinned epoch is unchanged even though the engine moved on.
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.len(), 1);
        assert_eq!(h.pin().epoch(), 2);
        assert_eq!(h.pin().len(), 3);
    }

    #[test]
    fn dimension_mismatch_is_rejected_up_front() {
        let h = ServingMuDbscan::spawn(2, params());
        let err = h.ingest(vec![ServeOp::insert(vec![0.0])]).unwrap_err();
        assert_eq!(err, ServeError::DimensionMismatch { expected: 2, got: 1 });
        let err = h.query(&[0.0]).unwrap_err();
        assert_eq!(err, ServeError::DimensionMismatch { expected: 2, got: 1 });
        // The failed batch assigned no ids and changed no state.
        assert_eq!(h.drain().unwrap().snapshot.epoch(), 0);
        assert_eq!(h.ingest(vec![ServeOp::insert(vec![0.0, 0.0])]).unwrap(), vec![0]);
    }

    #[test]
    fn handles_clone_and_shutdown_joins() {
        let h = ServingMuDbscan::spawn(1, params());
        let h2 = h.clone();
        h2.ingest(vec![ServeOp::insert(vec![0.0])]).unwrap();
        drop(h2);
        let d = h.shutdown().unwrap();
        assert_eq!(d.snapshot.len(), 1);
        assert!(d.counters.range_queries() > 0);
    }

    /// Pseudo-random 2-d rows for churn tests.
    fn rows(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..n).map(|_| vec![2.0 * r(), 2.0 * r()]).collect()
    }

    #[test]
    fn repair_and_rebuild_publish_identical_epochs() {
        // The same trace through a repair-enabled writer and a
        // rebuild-always writer (budget 0) must publish bit-identical
        // epochs — and both must match a batch run on the prefix.
        let p = params();
        let repair = ServingMuDbscan::spawn(2, p);
        let rebuild = ServingMuDbscan::spawn_with(
            2,
            p,
            ServeOptions { repair_budget: Some(0), ..Default::default() },
        );
        let pts = rows(60, 11);
        for (b, chunk) in pts.chunks(12).enumerate() {
            let mut ops: Vec<ServeOp> = chunk.iter().map(|c| ServeOp::insert(c.clone())).collect();
            // From batch 2 on, delete three ids inserted two batches ago.
            if b >= 2 {
                for k in 0..3 {
                    ops.push(ServeOp::delete(((b - 2) * 12 + 4 * k) as ExtId));
                }
            }
            let ids_a = repair.ingest(ops.clone()).unwrap();
            let ids_b = rebuild.ingest(ops).unwrap();
            assert_eq!(ids_a, ids_b);
            let (da, db) = (repair.drain().unwrap(), rebuild.drain().unwrap());
            assert_eq!(da.snapshot.epoch(), db.snapshot.epoch());
            assert_eq!(da.snapshot.live_ids(), db.snapshot.live_ids());
            assert_eq!(da.snapshot.dataset(), db.snapshot.dataset());
            assert_eq!(
                da.snapshot.clustering(),
                db.snapshot.clustering(),
                "epoch {}: repair and rebuild disagree",
                da.snapshot.epoch()
            );
            let want = batch_oracle(da.snapshot.dataset(), p);
            assert_eq!(*da.snapshot.clustering(), want, "epoch {}", da.snapshot.epoch());
        }
    }

    #[test]
    fn forced_fallback_rebuild_stays_exact() {
        // Budget 1 forces the fallback whenever a removal touches a
        // component of more than one survivor.
        let p = params();
        let h = ServingMuDbscan::spawn_with(
            1,
            p,
            ServeOptions { repair_budget: Some(1), ..Default::default() },
        );
        let ids = h
            .ingest(
                [[0.0], [0.5], [-0.5], [0.2]].iter().map(|r| ServeOp::insert(r.to_vec())).collect(),
            )
            .unwrap();
        h.drain().unwrap();
        h.ingest(vec![ServeOp::delete(ids[0])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 3);
        let want = batch_oracle(d.snapshot.dataset(), p);
        assert_eq!(*d.snapshot.clustering(), want);
        // Subsequent epochs keep working on the rebuilt id space.
        h.ingest(vec![ServeOp::insert(vec![0.3]), ServeOp::delete(ids[3])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(*d.snapshot.clustering(), batch_oracle(d.snapshot.dataset(), p));
    }

    /// A per-test scratch dir for postmortem artifacts, cleaned up on
    /// drop so test runs never dirty `results/`.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("mudbscan-serve-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn artifacts(dir: &PathBuf) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
            .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    #[test]
    fn service_survives_a_poisoned_snapshot_lock() {
        // A reader panicking while holding the snapshot lock poisons
        // it; every path (pin, query, writer publish) must recover, and
        // the writer leaves exactly one postmortem behind.
        let tmp = TempDir::new("poison");
        let h = ServingMuDbscan::spawn_with(
            1,
            params(),
            ServeOptions { postmortem_dir: Some(tmp.0.clone()), ..Default::default() },
        );
        h.ingest(vec![ServeOp::insert(vec![0.0])]).unwrap();
        h.drain().unwrap();
        let shared = Arc::clone(&h.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.current.lock().unwrap();
            panic!("induced panic while holding the snapshot lock");
        })
        .join();
        assert!(h.shared.current.lock().is_err(), "lock must actually be poisoned");
        // Readers still answer...
        assert_eq!(h.pin().epoch(), 1);
        assert_eq!(h.query(&[0.1]).unwrap(), vec![0]);
        // ...and the writer still publishes through the poisoned lock.
        h.ingest(vec![ServeOp::insert(vec![0.5]), ServeOp::insert(vec![-0.5])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.epoch(), 2);
        assert_eq!(d.snapshot.len(), 3);
        assert_eq!(*d.snapshot.clustering(), batch_oracle(d.snapshot.dataset(), params()));
        // The poisoned publish dumped one postmortem — and only one,
        // even across further epochs through the same poisoned lock.
        h.ingest(vec![ServeOp::insert(vec![0.25])]).unwrap();
        h.drain().unwrap();
        let files = artifacts(&tmp.0);
        assert_eq!(files.len(), 1, "poison dump must be one-shot: {files:?}");
        let js = obs::Json::parse(&std::fs::read_to_string(&files[0]).unwrap()).unwrap();
        assert_eq!(js.get("reason").and_then(obs::Json::as_str), Some("poisoned_lock"));
        obs::validate_postmortem(&js).expect("poison artifact is schema-valid");
    }

    #[test]
    fn ttl_zero_rounds_up_to_one_epoch() {
        let h = ServingMuDbscan::spawn(1, params());
        // ttl = 0 behaves exactly like ttl = 1: live in its own epoch...
        let ids = h
            .ingest(vec![ServeOp::insert_ttl(vec![0.0], 0), ServeOp::insert_ttl(vec![0.5], 1)])
            .unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 2);
        assert!(d.snapshot.membership(ids[0]).is_some());
        // ...and gone from the next epoch on.
        h.ingest(vec![]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 0);
        assert_eq!(d.snapshot.membership(ids[0]), None);
        assert_eq!(d.snapshot.membership(ids[1]), None);
    }

    #[test]
    fn ttl_max_saturates_to_forever() {
        let h = ServingMuDbscan::spawn(1, params());
        let ids = h.ingest(vec![ServeOp::insert_ttl(vec![0.0], u64::MAX)]).unwrap();
        for _ in 0..5 {
            h.ingest(vec![]).unwrap();
        }
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.epoch(), 6);
        assert!(d.snapshot.membership(ids[0]).is_some(), "saturating ttl must mean forever");
    }

    #[test]
    fn counters_are_monotone_across_repair_and_rebuild() {
        // `drain` counters must carry pre-rebuild work forward and never
        // go backwards, on both removal paths.
        let totals = |d: &Drained| {
            (
                d.counters.range_queries(),
                d.counters.dist_computations(),
                d.counters.union_ops(),
                d.counters.node_visits(),
            )
        };
        for budget in [None, Some(0)] {
            let h = ServingMuDbscan::spawn_with(
                2,
                params(),
                ServeOptions { repair_budget: budget, ..Default::default() },
            );
            let pts = rows(40, 23);
            let ids = h.ingest(pts.iter().map(|c| ServeOp::insert(c.clone())).collect()).unwrap();
            let t1 = totals(&h.drain().unwrap());
            assert!(t1.0 > 0, "insert epoch must have done queries");
            // Delete → (repair | fallback rebuild) → drain.
            h.ingest(vec![ServeOp::delete(ids[3]), ServeOp::delete(ids[17])]).unwrap();
            let t2 = totals(&h.drain().unwrap());
            assert!(t2 >= t1, "budget {budget:?}: counters went backwards: {t1:?} -> {t2:?}");
            assert!(t2.0 > t1.0, "budget {budget:?}: removal epoch must charge queries");
            // One more mixed epoch stays monotone too.
            h.ingest(vec![ServeOp::insert(vec![0.1, 0.1]), ServeOp::delete(ids[29])]).unwrap();
            let t3 = totals(&h.drain().unwrap());
            assert!(t3 >= t2, "budget {budget:?}: {t2:?} -> {t3:?}");
        }
    }

    #[test]
    fn tombstone_compaction_rebuild_preserves_exactness() {
        // Enough churn to trip the dead >= live, dead >= 64 compaction
        // trigger; every epoch must stay exact throughout.
        let p = params();
        let h = ServingMuDbscan::spawn(2, p);
        let pts = rows(200, 7);
        let ids = h.ingest(pts.iter().map(|c| ServeOp::insert(c.clone())).collect()).unwrap();
        h.drain().unwrap();
        // Delete 150 of 200 points over three epochs.
        for chunk in ids[..150].chunks(50) {
            h.ingest(chunk.iter().map(|&i| ServeOp::delete(i)).collect()).unwrap();
            let d = h.drain().unwrap();
            assert_eq!(*d.snapshot.clustering(), batch_oracle(d.snapshot.dataset(), p));
        }
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 50);
        assert_eq!(d.snapshot.live_ids(), &ids[150..]);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_epoch() {
        let h = ServingMuDbscan::spawn(1, params());
        std::thread::scope(|s| {
            let mut readers = Vec::new();
            for _ in 0..3 {
                let r = h.clone();
                readers.push(s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let snap = r.pin();
                        // Epochs advance monotonically per reader, and a
                        // snapshot is internally consistent: parallel
                        // arrays agree in length.
                        assert!(snap.epoch() >= last);
                        last = snap.epoch();
                        assert_eq!(snap.live_ids().len(), snap.len());
                        assert_eq!(snap.clustering().labels.len(), snap.len());
                        let _ = r.query(&[0.25]);
                    }
                    last
                }));
            }
            for i in 0..20 {
                h.ingest(vec![ServeOp::insert(vec![i as f64 * 0.1])]).unwrap();
            }
            h.drain().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });
        assert_eq!(h.snapshot_epoch(), 20);
    }

    #[test]
    fn stats_reports_the_live_state_and_window_deltas() {
        let h = ServingMuDbscan::spawn(1, params());
        let ids = h
            .ingest(
                [[0.0], [0.5], [-0.5], [10.0]]
                    .iter()
                    .map(|r| ServeOp::insert(r.to_vec()))
                    .collect(),
            )
            .unwrap();
        h.drain().unwrap();
        let s1 = h.stats();
        assert_eq!(s1.epoch, 1);
        assert_eq!(s1.live_points, 4);
        assert_eq!(s1.clusters, 1);
        assert_eq!(s1.window.count("serve/inserts"), 4);
        assert_eq!(s1.window.count("serve/epochs"), 1);
        assert!(s1.window.hist("serve/ingest_batch_us").is_some());
        // Next window carries only what happened since.
        h.ingest(vec![ServeOp::delete(ids[3])]).unwrap();
        h.drain().unwrap();
        let s2 = h.stats();
        assert_eq!(s2.window.count("serve/inserts"), 0);
        assert_eq!(s2.window.count("serve/deletes"), 1);
        assert_eq!(s2.cumulative.count("serve/inserts"), 4);
        assert_eq!(s2.repairs() + s2.fallback_rebuilds(), 1);
        assert_eq!(s2.drift_detections(), 0);
        // The Prometheus rendition exposes the cumulative counters.
        let prom = s2.render_prom();
        assert!(prom.contains("mudbscan_serve_inserts 4"), "{prom}");
        // The registry works with global obs collection fully disabled —
        // nothing above enabled it.
        assert!(!obs::enabled());
    }

    #[test]
    fn stats_windows_sum_to_cumulative_under_race() {
        // Readers and pollers race the writer; at drain, the merged
        // windows must equal the final cumulative state bit-identically
        // (counters and histograms).
        let h = ServingMuDbscan::spawn(1, params());
        let windows = Mutex::new(Vec::<obs::Report>::new());
        std::thread::scope(|s| {
            for _ in 0..2 {
                let r = h.clone();
                s.spawn(move || {
                    for i in 0..150 {
                        let _ = r.query(&[i as f64 * 0.01]);
                        let _ = r.membership(i as ExtId);
                    }
                });
            }
            for _ in 0..3 {
                let r = h.clone();
                let windows = &windows;
                s.spawn(move || {
                    for _ in 0..30 {
                        let stats = r.stats();
                        // Epoch-paired counters never tear.
                        assert!(
                            stats.window.count("serve/epochs")
                                >= stats.window.count("serve/fallback_rebuilds"),
                            "window saw a rebuild without its epoch"
                        );
                        windows.lock().unwrap_or_else(|e| e.into_inner()).push(stats.window);
                        std::thread::yield_now();
                    }
                });
            }
            for i in 0..25 {
                let mut ops = vec![ServeOp::insert(vec![i as f64 * 0.1])];
                if i % 5 == 4 {
                    ops.push(ServeOp::delete((i / 5) as ExtId));
                }
                h.ingest(ops).unwrap();
            }
            h.drain().unwrap();
        });
        // Quiesced: one final poll collects the tail window.
        let last = h.stats();
        let mut merged = obs::Report::default();
        for w in windows.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            merged.merge(w);
        }
        merged.merge(&last.window);
        assert_eq!(merged.counts, last.cumulative.counts, "window counter sums must be exact");
        assert_eq!(merged.hists, last.cumulative.hists, "window histogram sums must be exact");
        assert_eq!(last.cumulative.count("serve/epochs"), 25);
        assert_eq!(last.cumulative.count("serve/inserts"), 25);
        assert_eq!(last.cumulative.count("serve/deletes"), 5);
    }

    #[test]
    fn on_demand_postmortem_captures_recent_epochs() {
        let tmp = TempDir::new("ondemand");
        let h = ServingMuDbscan::spawn_with(
            1,
            params(),
            ServeOptions {
                recorder_capacity: 2,
                postmortem_dir: Some(tmp.0.clone()),
                ..Default::default()
            },
        );
        for i in 0..5 {
            h.ingest(vec![ServeOp::insert(vec![i as f64])]).unwrap();
        }
        h.drain().unwrap();
        let path = h.dump_postmortem().unwrap();
        let js = obs::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        obs::validate_postmortem(&js).unwrap();
        let entries = obs::parse_dump(&js).unwrap();
        // Capacity 2: exactly the last two epochs survive the ring.
        let epochs: Vec<u64> = entries
            .iter()
            .filter_map(|e| match e {
                obs::FlightEntry::Epoch { digest, .. } => Some(digest.epoch),
                _ => None,
            })
            .collect();
        assert_eq!(epochs, vec![4, 5]);
        assert_eq!(js.get("overwritten").and_then(obs::Json::as_f64), Some(3.0));
    }
}
