//! Machine-readable benchmark pipeline: run a pinned, seeded workload
//! matrix through sequential μDBSCAN, the shared-memory parallel variant
//! and the distributed simulator (all constructed via
//! [`mudbscan::prelude::Runner`]), collect per-phase times and `obs`
//! reports, verify exactness against the naive oracle, and write the
//! schema-versioned `BENCH_PR10.json` trajectory file. Schema v6 added a
//! served-traffic arm per workload: a seeded trace of batched inserts,
//! TTL expiries and deletions replayed through `Runner::serve` while
//! reader threads race the writer (see [`run_serve_traffic`]). Schema v7
//! adds the delete-heavy twin arms ([`run_serve_delete_heavy`]): the
//! same workload driven through delete-only epochs once with the
//! micro-cluster-local repair path and once with repair disabled
//! (rebuild on every structural deletion), gated on the repair arm's
//! batch-latency p99 beating the rebuild baseline by ≥ 2×. Schema v8
//! adds the live-telemetry contract: every serving arm polls
//! `ServeHandle::stats` while the trace replays and carries a
//! `live_telemetry` block whose merged window deltas must sum back to
//! the cumulative registry counters bit-for-bit (fail-closed at
//! emission), plus a k-distance sample summary and a live-polling arm
//! in the overhead probe.
//!
//! Parallel runs use the tiled parallel micro-cluster builder and carry a
//! `tree_construction_makespan` field: the construction critical path
//! (sequential stage walls + per-worker busy maxima of the parallel
//! stages, measured with thread-CPU clocks). On hosts with fewer cores
//! than worker threads the *wall* `tree_construction` time cannot shrink
//! with thread count — the makespan is the quantity that scales, the same
//! convention the distributed simulator uses for per-rank phase maxima.
//!
//! The JSON schema is documented in `docs/BENCH_SCHEMA.md`; the committed
//! `BENCH_PR10.json` is validated by `crates/bench/tests/bench_schema.rs`
//! and regenerated with
//!
//! ```text
//! cargo run --release -p bench --bin emit_bench
//! ```
//!
//! Environment knobs (all optional, for the CI perf-smoke job):
//!
//! * `EMIT_BENCH_N`     — points per workload (default 4000)
//! * `EMIT_BENCH_OUT`   — output path (default `BENCH_PR10.json`)
//! * `EMIT_BENCH_REPS`  — repetitions for the overhead measurement
//!   (default 5)
//! * `EMIT_BENCH_MAKESPAN_REPS` — constructions per parallel run for the
//!   makespan statistic; the reported `tree_construction_makespan` is the
//!   minimum over these, which strips scheduler noise from a quantity
//!   measured in single-digit milliseconds (default 5)
//! * `EMIT_BENCH_TRACE_OUT` — when set, additionally run one fully traced
//!   distributed run on the last workload and write the event trace as
//!   Chrome trace-event JSON (Perfetto-loadable; viewable with the
//!   `trace_view` binary) to this path
//! * `EMIT_BENCH_SHARDED_N` — points for the out-of-core sharded arm
//!   (default 1_000_000; the speedup/residency gates only engage at
//!   ≥ 10⁶ — the CI smoke job runs a reduced size and just reports)
//! * `EMIT_BENCH_SHARDED_REPS` — repetitions per sharded arm; the
//!   reported makespan is the minimum over these (default 1 — at 10⁶
//!   points the quantity is tens of seconds and scheduler noise is
//!   negligible)
//!
//! Exactness drift is fatal: any run whose clustering disagrees with the
//! naive-DBSCAN oracle aborts the process with a non-zero exit code, so
//! the CI job fails on behavioural regressions, not just schema ones.
//! The faulted distributed arm is additionally required to match its
//! fault-free twin bit-for-bit — the recovery-exactness contract.

use bench::{secs, timed, SEED};
use data::paper_table2_specs;
use geom::{Dataset, DbscanParams};
use metrics::Counters;
use mudbscan::prelude::{
    write_store, ChunkedStore, Family, Fault, FaultPlan, FaultStats, RunDetails, RunOutput, Runner,
    ServeOp, ServeOptions, ServeStats,
};
use mudbscan::{check_exact, naive_dbscan, Clustering, NOISE};
use obs::Json;

/// The JSON schema version written to the trajectory file. Bump when the
/// structure changes and update `docs/BENCH_SCHEMA.md` in the same PR.
/// v2: parallel runs gained `tree_construction_makespan` (the parallel
/// MC-build critical path) next to the wall-clock phase times.
/// v3: every run carries a `histograms` block (log-bucketed percentile
/// summaries of per-query costs, span durations and comm bytes),
/// distributed runs carry a per-rank `bsp_timeline`, and the overhead
/// probe gained a tracing-enabled arm.
/// v4: each workload gains a faulted distributed arm
/// (`mudbscan_d_p4_faults`) carrying a `fault` block — the replay
/// signature of the injected plan plus the recovery-overhead quantities —
/// whose clustering must stay bit-identical to the fault-free arm.
/// v5: the `histograms` block gains `query/leaf_evals` (exact point–point
/// distance evaluations charged per restricted ε-query, recorded by the
/// SoA leaf kernels); the committed trajectory file is `BENCH_PR6.json`.
/// v6: each workload gains a served-traffic arm (`serve_traffic`): a
/// deterministic trace of batched inserts, TTLs and deletions replayed
/// through the concurrent serving layer while reader threads race the
/// writer. The run record carries `final_matches_batch`, `epochs`,
/// `live_points`, an `ops` block of trace-determined operation totals,
/// and the wall-clock `serve/*_us` latency histograms; the committed
/// trajectory file was `BENCH_PR7.json`.
/// v7: deletions repair locally instead of rebuilding every epoch. The
/// serving `ops` block gains the repair census (`repairs`,
/// `repair_touched_points`, `fallback_rebuilds`), and each workload
/// gains two delete-heavy arms replaying the same delete-only trace —
/// `serve_delete_heavy` through the micro-cluster-local repair path and
/// `serve_delete_heavy_rebuild` with repair disabled
/// (`repair_budget: Some(0)`, the rebuild-every-structural-delete
/// baseline). At full bench size the repair arm's
/// `serve/ingest_batch_us` p99 must beat the baseline's by ≥ 2×
/// (fail-closed at emission); the committed trajectory file was
/// `BENCH_PR8.json`.
/// v8: every serving arm carries a `live_telemetry` block — the windowed
/// `ServeHandle::stats` snapshots polled while the trace replays, whose
/// merged window deltas must sum back to the cumulative registry
/// counters bit-for-bit (`window_sums_match`, fail-closed at emission).
/// The served-traffic arm adds a `kdist` summary (the facade's
/// `Runner::kdist_sample` at k = MinPts), and the overhead probe gains
/// a live arm (aggregates on plus a racing poller rendering the
/// Prometheus exposition and noting into a flight recorder) whose
/// `live_overhead_pct` is budgeted < 5% at full bench size; the
/// committed trajectory file was `BENCH_PR9.json`.
/// v9: the out-of-core sharded arm. The file gains a top-level
/// `sharded_scale` block ([`run_sharded_scale`]): the DGB analogue at
/// `EMIT_BENCH_SHARDED_N` points (default 10⁶) is written to a
/// memory-mapped chunk store in a temp dir and clustered through
/// `Runner::run_source` with `.shards(8)` and a memory budget of half
/// the raw coordinate bytes, once on 1 thread and once on 4. Exactness
/// is fail-closed at *every* size: both arms paper-exact against the
/// in-memory sequential run (identical cores, core partition and noise
/// — border ties are order-defined in DBSCAN, counted per arm as
/// `border_ties`), bit-identical to each other, and bit-identical to
/// the naive oracle at the overlap size (≤ 10⁴ points). Gates at full
/// sharded size: peak resident
/// shard bytes within the budget, and the modelled t1→t4 makespan
/// speedup ≥ 1.5× (on oversubscribed hosts the *wall* cannot shrink —
/// the makespan is plan + max per-worker thread-CPU busy + merge, the
/// same convention as `tree_construction_makespan`). The committed
/// trajectory file is `BENCH_PR10.json`.
const SCHEMA_VERSION: i64 = 9;

/// Below this sharded-arm size the makespan speedup and the residency
/// budget are fixed-cost noise; the CI smoke run only reports them.
const SHARDED_GATE_MIN_N: usize = 1_000_000;

/// The acceptance bar for the sharded executor: the t4 makespan must
/// beat t1 by at least this factor at full sharded size.
const SHARDED_MIN_SPEEDUP: f64 = 1.5;

/// Datasets from the Table II catalog used for the matrix (a subset keeps
/// the oracle check and the CI smoke run fast while still covering a
/// road-network, a galaxy and a higher-dimensional analogue).
const WORKLOAD_NAMES: [&str; 3] = ["3DSRN", "DGB0.5M3D", "HHP0.5M5D"];

/// The pinned fault plan of the `mudbscan_d_p4_faults` arm: one of every
/// fault class, all recoverable under the default retry budget. Superstep
/// 0 is the local-clustering compute step; superstep 2 is the
/// edge-exchange communication step (see `dist::driver`).
fn bench_fault_plan() -> FaultPlan {
    // Drops cover every inbound link of the merge root: whether a given
    // rank sends edges depends on the dataset's cross-partition structure
    // (an edge-free rank sends nothing), so dropping on all three links
    // guarantees the retry path is exercised at any workload size.
    FaultPlan::new(SEED)
        .with(Fault::Crash { rank: 1, superstep: 0 })
        .with(Fault::Drop { superstep: 2, from: 1, to: 0, attempts: 3 })
        .with(Fault::Drop { superstep: 2, from: 2, to: 0, attempts: 3 })
        .with(Fault::Drop { superstep: 2, from: 3, to: 0, attempts: 3 })
        .with(Fault::Duplicate { superstep: 2, from: 3, to: 0 })
        .with(Fault::Reorder { superstep: 2, to: 0 })
        .with(Fault::Straggler { rank: 2, slowdown: 4.0 })
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn count(v: u64) -> Json {
    Json::Num(v as f64)
}

fn counters_json(c: &Counters) -> Json {
    Json::obj_from([
        ("range_queries".to_string(), count(c.range_queries())),
        ("queries_saved".to_string(), count(c.queries_saved())),
        ("pct_queries_saved".to_string(), num(c.pct_queries_saved())),
        ("dist_computations".to_string(), count(c.dist_computations())),
        ("node_visits".to_string(), count(c.node_visits())),
        ("union_ops".to_string(), count(c.union_ops())),
    ])
}

/// Verify exactness against the oracle; abort loudly on drift.
fn must_be_exact(
    label: &str,
    dataset: &str,
    clustering: &Clustering,
    reference: &Clustering,
    data: &Dataset,
    params: &DbscanParams,
) {
    let rep = check_exact(clustering, reference, data, params);
    if !rep.is_exact() {
        eprintln!("EXACTNESS DRIFT: {label} on {dataset}: {rep:?}");
        std::process::exit(1);
    }
}

/// Per-run quantities beyond the clustering itself.
struct RunMeta {
    counters: Counters,
    phases: metrics::PhaseTimer,
    /// BSP virtual clock (distributed runs only).
    virtual_secs: Option<f64>,
    /// Parallel MC-build critical path (parallel runs only).
    tree_construction_makespan: Option<f64>,
    /// Per-rank virtual-clock summaries + superstep count (distributed
    /// runs only) — rendered as the schema-v3 `bsp_timeline` block.
    bsp_timeline: Option<(Vec<cluster_sim::RankClock>, usize)>,
    peak_heap: u64,
    /// Schema-v4 fault/recovery block (the faulted arm only).
    fault: Option<Json>,
}

impl RunMeta {
    /// Meta of a facade run, shared across every arm shape.
    fn from_output(out: &RunOutput) -> Self {
        let mut meta = RunMeta {
            counters: Counters::new(),
            phases: out.phases.clone(),
            virtual_secs: None,
            tree_construction_makespan: None,
            bsp_timeline: None,
            peak_heap: 0,
            fault: None,
        };
        meta.counters.absorb(&out.counters);
        match &out.details {
            RunDetails::Sequential { peak_heap_bytes, .. } => {
                meta.peak_heap = *peak_heap_bytes as u64;
            }
            RunDetails::Parallel { build_stats, .. } => {
                meta.tree_construction_makespan = build_stats.as_ref().map(|s| s.makespan_secs);
            }
            RunDetails::Distributed {
                runtime_secs,
                max_rank_heap_bytes,
                rank_clocks,
                supersteps,
                ..
            } => {
                meta.virtual_secs = Some(*runtime_secs);
                meta.peak_heap = *max_rank_heap_bytes as u64;
                meta.bsp_timeline = Some((rank_clocks.clone(), *supersteps));
            }
            // The sharded arm has its own emitter (`run_sharded_scale`)
            // and never flows through RunMeta.
            RunDetails::Sharded { .. }
            | RunDetails::Streaming
            | RunDetails::Optics { .. }
            | RunDetails::Serving { .. } => {}
        }
        meta
    }
}

fn bsp_timeline_json(clocks: &[cluster_sim::RankClock], supersteps: usize) -> Json {
    let ranks: Vec<Json> = clocks
        .iter()
        .enumerate()
        .map(|(r, c)| {
            Json::obj_from([
                ("rank".to_string(), count(r as u64)),
                ("compute_virtual_secs".to_string(), num(c.compute_secs)),
                ("comm_virtual_secs".to_string(), num(c.comm_secs)),
                ("bytes_sent".to_string(), count(c.bytes_sent)),
                ("bytes_received".to_string(), count(c.bytes_received)),
            ])
        })
        .collect();
    Json::obj_from([
        ("supersteps".to_string(), count(supersteps as u64)),
        ("ranks".to_string(), Json::Arr(ranks)),
    ])
}

/// The schema-v4 `fault` block: the plan seed, every replay-deterministic
/// integer counter of [`FaultStats`] (diffed with zero tolerance by
/// `bench_diff`), the virtual-second recovery costs, and the
/// recovery-overhead comparison against the fault-free twin arm.
fn fault_json(
    plan_seed: u64,
    stats: &FaultStats,
    recovery_virtual_secs: f64,
    faulted_runtime: f64,
    fault_free_runtime: f64,
    clusters_match: bool,
) -> Json {
    let overhead_pct = if fault_free_runtime > 0.0 {
        100.0 * (faulted_runtime - fault_free_runtime) / fault_free_runtime
    } else {
        0.0
    };
    Json::obj_from([
        ("plan_seed".to_string(), count(plan_seed)),
        ("crashes".to_string(), count(stats.crashes)),
        ("recoveries".to_string(), count(stats.recoveries)),
        ("drops_injected".to_string(), count(stats.drops_injected)),
        ("retries".to_string(), count(stats.retries)),
        ("messages_lost".to_string(), count(stats.messages_lost)),
        ("duplicates_injected".to_string(), count(stats.duplicates_injected)),
        ("duplicates_discarded".to_string(), count(stats.duplicates_discarded)),
        ("reorders_injected".to_string(), count(stats.reorders_injected)),
        ("straggled_steps".to_string(), count(stats.straggled_steps)),
        ("recovery_comm_bytes".to_string(), count(stats.recovery_comm_bytes)),
        ("retry_delay_virtual_secs".to_string(), num(stats.retry_delay_secs)),
        ("recovery_compute_virtual_secs".to_string(), num(stats.recovery_compute_secs)),
        ("recovery_comm_virtual_secs".to_string(), num(stats.recovery_comm_secs)),
        ("recovery_virtual_secs".to_string(), num(recovery_virtual_secs)),
        ("overhead_vs_fault_free_pct".to_string(), num(overhead_pct)),
        ("clusters_match_fault_free".to_string(), Json::Bool(clusters_match)),
    ])
}

/// One algorithm run: returns the JSON record for the `runs` array.
///
/// Wall and per-phase times are single-digit-millisecond quantities at
/// bench size, so a single shot is at the mercy of the scheduler. The
/// run repeats `EMIT_BENCH_TIME_REPS` times (observability off after the
/// first — counters, obs and histograms reflect exactly one run) and the
/// reported `wall_secs` and `phases` are the per-metric minima, the same
/// noise-stripping convention `tree_construction_makespan` uses.
fn run_one(
    label: &str,
    dataset: &str,
    data: &Dataset,
    params: &DbscanParams,
    reference: &Clustering,
    mut run: impl FnMut() -> (Clustering, RunMeta),
) -> Json {
    obs::reset();
    obs::enable();
    let ((clustering, meta), mut wall) = timed(&mut run);
    obs::disable();
    let report = obs::take_report();
    must_be_exact(label, dataset, &clustering, reference, data, params);
    let RunMeta {
        counters,
        phases,
        mut virtual_secs,
        tree_construction_makespan,
        bsp_timeline,
        peak_heap,
        fault,
    } = meta;

    let mut phase_mins: Vec<(String, f64)> =
        phases.split_up().into_iter().map(|(name, secs, _pct)| (name, secs)).collect();
    let mut makespan_min = tree_construction_makespan;
    for _ in 1..env_usize("EMIT_BENCH_TIME_REPS", 3).max(1) {
        obs::disable();
        let ((extra_clustering, extra), w) = timed(&mut run);
        must_be_exact(label, dataset, &extra_clustering, reference, data, params);
        wall = wall.min(w);
        for (name, secs, _pct) in extra.phases.split_up() {
            if let Some((_, m)) = phase_mins.iter_mut().find(|(n, _)| *n == name) {
                *m = m.min(secs);
            }
        }
        if let (Some(v), Some(ev)) = (virtual_secs.as_mut(), extra.virtual_secs) {
            *v = v.min(ev);
        }
        if let (Some(m), Some(em)) = (makespan_min.as_mut(), extra.tree_construction_makespan) {
            *m = m.min(em);
        }
    }
    // Drop anything the timing reps recorded (a rerun closure may toggle
    // the collector); the emitted report is the first run's.
    obs::disable();
    obs::reset();
    let tree_construction_makespan = makespan_min;

    let mut rec = Json::obj();
    rec.set("algorithm", Json::Str(label.to_string()));
    rec.set("exact", Json::Bool(true));
    rec.set("clusters", count(clustering.n_clusters as u64));
    rec.set("noise", count(clustering.noise_count() as u64));
    rec.set("wall_secs", num(wall));
    rec.set("phases", Json::obj_from(phase_mins.into_iter().map(|(name, secs)| (name, num(secs)))));
    if let Some(v) = virtual_secs {
        rec.set("virtual_secs", num(v));
    }
    if let Some(m) = tree_construction_makespan {
        rec.set("tree_construction_makespan", num(m));
    }
    if let Some((clocks, steps)) = &bsp_timeline {
        rec.set("bsp_timeline", bsp_timeline_json(clocks, *steps));
    }
    if let Some(f) = fault {
        rec.set("fault", f);
    }
    rec.set("pct_queries_saved", num(counters.pct_queries_saved()));
    rec.set("counters", counters_json(&counters));
    rec.set("peak_heap_bytes", count(peak_heap));
    // Schema v3: log-bucketed percentile summaries of the per-query
    // costs, comm bytes and any other histograms the run recorded.
    rec.set(
        "histograms",
        Json::obj_from(report.hists.iter().map(|(k, h)| (k.clone(), h.summary_json()))),
    );
    rec.set("obs", report.to_json());
    rec
}

/// Serving counters summarised in the `live_telemetry` block (the
/// registry keys without the `serve/` prefix).
const LIVE_COUNTER_KEYS: [&str; 9] = [
    "epochs",
    "inserts",
    "deletes",
    "deletes_ignored",
    "expiries",
    "repairs",
    "repair_touched_points",
    "rebuilds",
    "fallback_rebuilds",
];

/// The schema-v8 `live_telemetry` block: every window a `stats` poll
/// returned during the instrumented replay, merged, must reproduce the
/// final cumulative registry counters *and* histograms bit-for-bit —
/// that is the windowed-export contract (`obs::live`), so a mismatch is
/// fatal at emission and a committed file can only say
/// `window_sums_match: true`.
fn live_telemetry_json(ctx: &str, series: &obs::LiveSeries, fin: &ServeStats) -> Json {
    let merged = series.merged();
    if merged.counts != fin.cumulative.counts || merged.hists != fin.cumulative.hists {
        eprintln!(
            "TELEMETRY DRIFT: {ctx}: merged stats windows do not sum to the cumulative registry"
        );
        std::process::exit(1);
    }
    let totals = |r: &obs::Report| {
        Json::obj_from(
            LIVE_COUNTER_KEYS.map(|k| (k.to_string(), count(r.count(&format!("serve/{k}"))))),
        )
    };
    Json::obj_from([
        ("polls".to_string(), count(series.len() as u64)),
        ("window_sums_match".to_string(), Json::Bool(true)),
        ("windows".to_string(), totals(&merged)),
        ("cumulative".to_string(), totals(&fin.cumulative)),
    ])
}

/// Batches in the served-traffic trace (also its final logical epoch).
const SERVE_BATCHES: usize = 8;
/// Reader threads racing the writer in the served-traffic arm.
const SERVE_READERS: usize = 4;

/// The schema-v6 served-traffic arm: replay a deterministic trace of
/// batched inserts, TTL expiries and deletions through the concurrent
/// serving layer (`Runner::serve`) while reader threads race the writer
/// with ε-queries and membership lookups against whatever epoch happens
/// to be published.
///
/// The trace is a pure function of the workload: points are ingested in
/// [`SERVE_BATCHES`] contiguous batches in id order (single-handle
/// ingest, so external ids equal dataset ids), every id ≡ 3 (mod 11)
/// carries a two-epoch TTL, and each batch `b ≥ 2` deletes the ids
/// ≡ 5 (mod 13) inserted exactly two batches earlier (the ones whose
/// TTL already fired count as `deletes_ignored` — also
/// trace-determined). Reader *answers* depend on which epoch each query
/// pins — that is the point of snapshot isolation — so only
/// trace-determined totals are emitted as work metrics, while the
/// `serve/*_us` histograms are wall-clock and compare like timings in
/// `bench_diff`.
///
/// Exactness is fail-closed twice over: the drained final snapshot must
/// be oracle-exact on the live set and bit-identical to a batch
/// streaming run over the same points (`final_matches_batch`).
fn run_serve_traffic(name: &str, data: &Dataset, params: &DbscanParams) -> Json {
    let n = data.len();
    let chunk = n.div_ceil(SERVE_BATCHES).max(1);
    let batch_ops = |b: usize| -> Vec<ServeOp> {
        let mut ops = Vec::new();
        if b >= 2 {
            let (lo, hi) = (((b - 2) * chunk).min(n), ((b - 1) * chunk).min(n));
            ops.extend((lo..hi).filter(|id| id % 13 == 5).map(|id| ServeOp::delete(id as u64)));
        }
        let (lo, hi) = ((b * chunk).min(n), ((b + 1) * chunk).min(n));
        ops.extend((lo..hi).map(|id| {
            let coords = data.point(id as u32).to_vec();
            if id % 11 == 3 {
                ServeOp::insert_ttl(coords, 2)
            } else {
                ServeOp::insert(coords)
            }
        }));
        ops
    };

    // One replay of the whole trace: spawn the engine, race the readers
    // against the ingest loop, rendezvous via `drain`. The instrumented
    // shot additionally races a telemetry poller draining windowed
    // `ServeHandle::stats` snapshots off the engine's shared cursor —
    // the schema-v8 live-telemetry contract — with one last poll after
    // the drain so the merged windows cover the whole trace. The handle
    // drop at the end joins the writer thread.
    let replay = |poll: bool| {
        let handle = Runner::new(*params).serve(data.dim()).expect("serving configuration");
        let t0 = std::time::Instant::now();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let (drained, series) = std::thread::scope(|s| {
            let poller = poll.then(|| {
                let h = handle.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut series = obs::LiveSeries::new();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        series.push(h.stats().window);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    series
                })
            });
            for r in 0..SERVE_READERS {
                let h = handle.clone();
                s.spawn(move || {
                    let quota = n / SERVE_READERS + usize::from(r < n % SERVE_READERS);
                    for i in 0..quota {
                        let k = r + i * SERVE_READERS;
                        let mut probe =
                            data.point(((k.wrapping_mul(104_729) + 12_345) % n) as u32).to_vec();
                        // Deterministic jitter keeps the probes off the
                        // ingested points without leaving the ε-scale.
                        for (d, x) in probe.iter_mut().enumerate() {
                            *x += params.eps * 0.25 * ((((k + d) % 7) as f64) - 3.0) / 3.0;
                        }
                        let _ = h.query(&probe).expect("probe dimension matches");
                        let _ = h.membership((k.wrapping_mul(7_919) % n) as u64);
                    }
                });
            }
            for b in 0..SERVE_BATCHES {
                handle.ingest(batch_ops(b)).expect("writer alive");
            }
            let drained = handle.drain().expect("writer alive");
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            (drained, poller.map(|p| p.join().expect("telemetry poller")))
        });
        let wall = t0.elapsed().as_secs_f64();
        let telemetry = series.map(|mut series| {
            let fin = handle.stats();
            series.push(fin.window.clone());
            (series, fin)
        });
        (drained, wall, telemetry)
    };

    // One instrumented shot (the reported ops, counters and histograms
    // reflect exactly one replay), then untraced reruns for the minimum
    // wall — the same noise-stripping convention `run_one` uses.
    obs::reset();
    obs::enable();
    let (drained, mut wall, telemetry) = replay(true);
    obs::disable();
    let report = obs::take_report();
    obs::reset();
    for _ in 1..env_usize("EMIT_BENCH_TIME_REPS", 3).max(1) {
        wall = wall.min(replay(false).1);
    }
    let (series, final_stats) = telemetry.expect("the instrumented replay polls");

    // Fail-closed exactness on the final live set, checked with
    // instrumentation off so the verification runs stay out of the
    // report: oracle-exact AND bit-identical to the batch twin.
    let live = drained.snapshot.dataset();
    let reference = naive_dbscan(live, params);
    must_be_exact("serve_traffic", name, drained.snapshot.clustering(), &reference, live, params);
    let batch =
        Runner::new(*params).family(Family::Streaming).run(live).expect("batch streaming twin");
    if *drained.snapshot.clustering() != batch.clustering {
        eprintln!(
            "EPOCH DRIFT: serve_traffic final snapshot diverged from its batch twin on {name}"
        );
        std::process::exit(1);
    }

    let hist_count =
        |key: &str| report.hists.iter().find(|(k, _)| k == key).map_or(0, |(_, h)| h.count());
    let mut rec = Json::obj();
    rec.set("algorithm", Json::Str("serve_traffic".to_string()));
    rec.set("exact", Json::Bool(true));
    rec.set("final_matches_batch", Json::Bool(true));
    rec.set("clusters", count(drained.snapshot.clustering().n_clusters as u64));
    rec.set("noise", count(drained.snapshot.clustering().noise_count() as u64));
    rec.set("epochs", count(drained.snapshot.epoch()));
    rec.set("live_points", count(live.len() as u64));
    rec.set("wall_secs", num(wall));
    rec.set("phases", Json::obj_from([("serve_replay".to_string(), num(wall))]));
    rec.set(
        "ops",
        Json::obj_from([
            ("inserts".to_string(), count(report.count("serve/inserts"))),
            ("deletes".to_string(), count(report.count("serve/deletes"))),
            ("deletes_ignored".to_string(), count(report.count("serve/deletes_ignored"))),
            ("expiries".to_string(), count(report.count("serve/expiries"))),
            ("rebuilds".to_string(), count(report.count("serve/rebuilds"))),
            ("repairs".to_string(), count(report.count("serve/repairs"))),
            (
                "repair_touched_points".to_string(),
                count(report.count("serve/repair_touched_points")),
            ),
            ("fallback_rebuilds".to_string(), count(report.count("serve/fallback_rebuilds"))),
            ("reader_queries".to_string(), count(hist_count("serve/query_us"))),
            ("reader_memberships".to_string(), count(hist_count("serve/membership_us"))),
            ("reader_threads".to_string(), count(SERVE_READERS as u64)),
        ]),
    );
    // Schema v8: the live-telemetry contract, plus the k-distance sample
    // behind ε selection (`Runner::kdist_sample` at k = MinPts) —
    // sorted ascending here so the summary percentiles read like the
    // latency ones.
    let mut lt = live_telemetry_json(&format!("serve_traffic/{name}"), &series, &final_stats);
    let mut kdist = Runner::new(*params).kdist_sample(data, params.min_pts).expect("k-dist sample");
    kdist.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    let pick = |q: f64| kdist[((kdist.len() - 1) as f64 * q).round() as usize];
    lt.set(
        "kdist",
        Json::obj_from([
            ("k".to_string(), count(params.min_pts as u64)),
            ("samples".to_string(), count(kdist.len() as u64)),
            ("p50".to_string(), num(pick(0.5))),
            ("p90".to_string(), num(pick(0.9))),
            ("p99".to_string(), num(pick(0.99))),
        ]),
    );
    rec.set("live_telemetry", lt);
    rec.set("pct_queries_saved", num(drained.counters.pct_queries_saved()));
    rec.set("counters", counters_json(&drained.counters));
    rec.set(
        "histograms",
        Json::obj_from(report.hists.iter().map(|(k, h)| (k.clone(), h.summary_json()))),
    );
    rec.set("obs", report.to_json());
    rec
}

/// Delete-only epochs in the delete-heavy twin arms (after the single
/// insert epoch that loads the whole workload).
const DELETE_HEAVY_BATCHES: usize = 48;
/// Deletions per delete-only epoch. Kept small so a batch measures
/// per-deletion repair latency: the rebuild baseline's fallback absorbs
/// a whole batch into one rebuild, so large delete batches would
/// amortise the rebuild instead of exposing the per-op contrast.
const DELETE_HEAVY_PER_BATCH: usize = 2;

/// The schema-v7 delete-heavy arm: load the workload in one epoch, then
/// drive [`DELETE_HEAVY_BATCHES`] delete-only epochs of
/// [`DELETE_HEAVY_PER_BATCH`] evenly-strided deletions each (single
/// handle ingest, so external ids equal dataset ids — the stride
/// scatters the deletions across the workload's clusters). Run once per
/// budget: `None` (adaptive — the micro-cluster-local repair path) and
/// `Some(0)` (repair disabled: every structural deletion falls back to
/// a compacting full rebuild, the baseline the repair path is measured
/// against). Returns the run record plus the `serve/ingest_batch_us`
/// p99 for the ≥ 2× emission gate.
///
/// No racing readers here: the arm isolates *writer* deletion latency,
/// and a reader-free trace keeps every ops total and engine counter
/// replay-deterministic for `bench_diff`'s zero-tolerance gate.
fn run_serve_delete_heavy(
    label: &str,
    name: &str,
    data: &Dataset,
    params: &DbscanParams,
    budget: Option<usize>,
) -> (Json, f64) {
    let n = data.len();
    let total = (DELETE_HEAVY_BATCHES * DELETE_HEAVY_PER_BATCH).min(n / 2).max(1);
    let stride = (n / total).max(1);
    let targets: Vec<u64> = (0..total).map(|j| (j * stride) as u64).collect();
    let batches = 1 + total.div_ceil(DELETE_HEAVY_PER_BATCH);
    let batch_ops = |b: usize| -> Vec<ServeOp> {
        if b == 0 {
            (0..n).map(|id| ServeOp::insert(data.point(id as u32).to_vec())).collect()
        } else {
            let lo = ((b - 1) * DELETE_HEAVY_PER_BATCH).min(total);
            let hi = (b * DELETE_HEAVY_PER_BATCH).min(total);
            targets[lo..hi].iter().map(|&id| ServeOp::delete(id)).collect()
        }
    };

    // The load epoch runs *outside* the measured window (obs off, wall
    // clock not started): the arm isolates the delete-only epochs, so
    // `serve/ingest_batch_us` percentiles compare repair vs rebuild
    // latency instead of being dominated by the one big insert epoch
    // both arms share. The census consequently takes `inserts` from the
    // trace itself (it is trace-determined either way).
    let replay = |instrument: bool| {
        let handle = Runner::new(*params)
            .serve_options(ServeOptions { repair_budget: budget, ..Default::default() })
            .serve(data.dim())
            .expect("serving configuration");
        handle.ingest(batch_ops(0)).expect("writer alive");
        handle.drain().expect("writer alive");
        if instrument {
            obs::enable();
        }
        // The instrumented shot polls `stats` once per delete batch plus
        // once after the drain — a reader-free trace keeps the poll
        // count itself deterministic, and the merged windows must still
        // sum back to the cumulative registry (schema v8).
        let mut series = obs::LiveSeries::new();
        let t0 = std::time::Instant::now();
        for b in 1..batches {
            handle.ingest(batch_ops(b)).expect("writer alive");
            if instrument {
                series.push(handle.stats().window);
            }
        }
        let drained = handle.drain().expect("writer alive");
        let wall = t0.elapsed().as_secs_f64();
        if instrument {
            obs::disable();
        }
        let telemetry = instrument.then(|| {
            let fin = handle.stats();
            series.push(fin.window.clone());
            (series, fin)
        });
        (drained, wall, telemetry)
    };

    // One instrumented shot, then untraced reruns for the minimum wall —
    // the same noise-stripping convention the other serving arm uses.
    obs::reset();
    let (drained, mut wall, telemetry) = replay(true);
    let report = obs::take_report();
    obs::reset();
    for _ in 1..env_usize("EMIT_BENCH_TIME_REPS", 3).max(1) {
        wall = wall.min(replay(false).1);
    }
    let (series, final_stats) = telemetry.expect("the instrumented replay polls");

    // Fail-closed exactness on the surviving live set: oracle-exact AND
    // bit-identical to the batch twin (instrumentation already off).
    let live = drained.snapshot.dataset();
    let reference = naive_dbscan(live, params);
    must_be_exact(label, name, drained.snapshot.clustering(), &reference, live, params);
    let batch =
        Runner::new(*params).family(Family::Streaming).run(live).expect("batch streaming twin");
    if *drained.snapshot.clustering() != batch.clustering {
        eprintln!("EPOCH DRIFT: {label} final snapshot diverged from its batch twin on {name}");
        std::process::exit(1);
    }

    let p99 = report.hist("serve/ingest_batch_us").map_or(0.0, |h| h.percentile(0.99) as f64);
    let mut rec = Json::obj();
    rec.set("algorithm", Json::Str(label.to_string()));
    rec.set("exact", Json::Bool(true));
    rec.set("final_matches_batch", Json::Bool(true));
    rec.set("clusters", count(drained.snapshot.clustering().n_clusters as u64));
    rec.set("noise", count(drained.snapshot.clustering().noise_count() as u64));
    rec.set("epochs", count(drained.snapshot.epoch()));
    rec.set("live_points", count(live.len() as u64));
    rec.set("wall_secs", num(wall));
    rec.set("phases", Json::obj_from([("serve_replay".to_string(), num(wall))]));
    rec.set(
        "ops",
        Json::obj_from([
            // The load epoch sits outside the obs window; its size is a
            // trace constant.
            ("inserts".to_string(), count(n as u64)),
            ("deletes".to_string(), count(report.count("serve/deletes"))),
            ("deletes_ignored".to_string(), count(report.count("serve/deletes_ignored"))),
            ("expiries".to_string(), count(report.count("serve/expiries"))),
            ("rebuilds".to_string(), count(report.count("serve/rebuilds"))),
            ("repairs".to_string(), count(report.count("serve/repairs"))),
            (
                "repair_touched_points".to_string(),
                count(report.count("serve/repair_touched_points")),
            ),
            ("fallback_rebuilds".to_string(), count(report.count("serve/fallback_rebuilds"))),
        ]),
    );
    rec.set(
        "live_telemetry",
        live_telemetry_json(&format!("{label}/{name}"), &series, &final_stats),
    );
    rec.set("pct_queries_saved", num(drained.counters.pct_queries_saved()));
    rec.set("counters", counters_json(&drained.counters));
    rec.set(
        "histograms",
        Json::obj_from(report.hists.iter().map(|(k, h)| (k.clone(), h.summary_json()))),
    );
    rec.set("obs", report.to_json());
    (rec, p99)
}

/// Measure the overhead of the obs instrumentation on the
/// repro_table2-style workload: median wall time over `reps` runs of
/// sequential μDBSCAN with collection off, with aggregate collection
/// (spans + counters + histograms) on, with event tracing on top, and
/// (schema v8) with the live-telemetry machinery racing the run — a
/// poller thread draining windowed snapshots off the global collector,
/// rendering the Prometheus exposition and noting into a flight
/// recorder, the worst case the serving layer's always-on registry and
/// recorder add to a computation.
fn measure_overhead(data: &Dataset, params: &DbscanParams, reps: usize) -> Json {
    let runner = Runner::new(*params);
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        xs[xs.len() / 2]
    };
    let time_runs = |enabled: bool, tracing: bool| -> Vec<f64> {
        (0..reps)
            .map(|_| {
                obs::reset();
                if enabled {
                    obs::enable();
                }
                if tracing {
                    obs::enable_tracing();
                }
                let (_, t) = timed(|| runner.run(data).expect("sequential run"));
                obs::disable_tracing();
                obs::disable();
                let _ = obs::take_trace();
                obs::reset();
                t
            })
            .collect()
    };
    // The poller is paced at a dashboard cadence: each `poll_global`
    // clones the whole collector state under the global lock, so an
    // adversarial spin-poll measures lock-hammering, not the
    // steady-state cost of live export. 25ms guarantees at least one
    // full poll+render+note cycle per rep at any workload size.
    let time_live_runs = || -> Vec<f64> {
        (0..reps)
            .map(|_| {
                obs::reset();
                obs::enable();
                let stop = std::sync::atomic::AtomicBool::new(false);
                let recorder = obs::FlightRecorder::new(64);
                let t = std::thread::scope(|s| {
                    s.spawn(|| {
                        let mut cursor = obs::WindowCursor::new();
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            let snap = cursor.poll_global();
                            let _ = obs::render_prom(&snap.cumulative, "mudbscan");
                            recorder.note("overhead-probe poll");
                            std::thread::sleep(std::time::Duration::from_millis(25));
                        }
                    });
                    let (_, t) = timed(|| runner.run(data).expect("sequential run"));
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                    t
                });
                obs::disable();
                obs::reset();
                t
            })
            .collect()
    };
    // Warm-up run so no arm pays first-touch costs.
    let _ = runner.run(data).expect("sequential run");
    let off = median(time_runs(false, false));
    let on = median(time_runs(true, false));
    let traced = median(time_runs(true, true));
    let live = median(time_live_runs());
    let pct = if off > 0.0 { 100.0 * (on - off) / off } else { 0.0 };
    let tracing_pct = if off > 0.0 { 100.0 * (traced - off) / off } else { 0.0 };
    let live_pct = if off > 0.0 { 100.0 * (live - off) / off } else { 0.0 };
    println!(
        "instrumentation overhead: disabled {} vs enabled {} ({pct:+.2}%) vs traced {} \
         ({tracing_pct:+.2}%) vs live-polled {} ({live_pct:+.2}%)",
        secs(off),
        secs(on),
        secs(traced),
        secs(live)
    );
    Json::obj_from([
        ("reps".to_string(), count(reps as u64)),
        ("median_disabled_secs".to_string(), num(off)),
        ("median_enabled_secs".to_string(), num(on)),
        ("median_traced_secs".to_string(), num(traced)),
        ("median_live_secs".to_string(), num(live)),
        ("overhead_pct".to_string(), num(pct)),
        ("tracing_overhead_pct".to_string(), num(tracing_pct)),
        ("live_overhead_pct".to_string(), num(live_pct)),
    ])
}

/// Optional trace export: one fully traced distributed run (wall spans on
/// pid 1, per-rank BSP virtual timeline on pid 2), written as Chrome
/// trace-event JSON.
fn export_trace(path: &str, data: &Dataset, params: &DbscanParams) {
    obs::reset();
    obs::enable();
    obs::enable_tracing();
    let _ = Runner::new(*params).ranks(4).run(data).expect("traced dist run");
    obs::disable_tracing();
    obs::disable();
    let trace = obs::take_trace();
    obs::reset();
    trace.validate().expect("emitted trace must be internally consistent");
    let text = trace.to_chrome_json().render_pretty();
    std::fs::write(path, &text).expect("write trace file");
    println!("wrote {path} ({} events, {} bytes)", trace.len(), text.len());
}

/// Schema v9: the out-of-core sharded arm. Writes the DGB analogue at
/// `n` points to a memory-mapped chunk store in a temp dir, clusters it
/// through `Runner::run_source` with `.shards(8)` and a memory budget
/// of half the raw coordinate bytes on 1 and 4 worker threads, and
/// verifies — fail-closed at emission, at every size — that both arms
/// are bit-identical to each other and to the in-memory sequential run
/// on the same points, plus a naive-oracle equivalence check at the
/// overlap size (naive is O(n²), so it caps at 10⁴ points). At
/// [`SHARDED_GATE_MIN_N`] two more gates engage: peak resident shard
/// bytes within the budget, and t1→t4 makespan speedup ≥
/// [`SHARDED_MIN_SPEEDUP`] (makespan = plan wall + max per-worker
/// thread-CPU busy + merge wall — the quantity that scales on
/// oversubscribed hosts, same convention as
/// `tree_construction_makespan`).
/// Cheap structural paper-exactness: identical core flags, identical
/// noise set, identical core partition (label bijection over core
/// points), and every label disagreement confined to border points.
/// Returns `(ok, border_ties)` where `border_ties` counts border points
/// the two clusterings attach to different (bijection-mapped) clusters
/// — a border strictly within ε of cores in two clusters is
/// order-defined in DBSCAN itself, so the sharded executor's canonical
/// minimum-id choice can legitimately differ from sequential μDBSCAN's
/// processing-order choice. `check_exact` would also re-verify border
/// validity geometrically, but that is O(borders × n) — far too slow at
/// 10⁶ points; the merge's border rule is pinned bitwise against the
/// naive oracle by the conformance suite and the overlap check below.
fn paper_exact_structural(a: &Clustering, b: &Clustering) -> (bool, u64) {
    if a.is_core != b.is_core || a.n_clusters != b.n_clusters {
        return (false, 0);
    }
    let n = a.labels.len();
    let mut fwd = vec![NOISE; a.n_clusters];
    let mut bwd = vec![NOISE; b.n_clusters];
    for p in 0..n {
        if !a.is_core[p] {
            continue;
        }
        let (la, lb) = (a.labels[p], b.labels[p]);
        if la == NOISE || lb == NOISE {
            return (false, 0); // a core point must be clustered
        }
        if fwd[la as usize] == NOISE {
            fwd[la as usize] = lb;
        } else if fwd[la as usize] != lb {
            return (false, 0);
        }
        if bwd[lb as usize] == NOISE {
            bwd[lb as usize] = la;
        } else if bwd[lb as usize] != la {
            return (false, 0);
        }
    }
    let mut ties = 0u64;
    for p in 0..n {
        let (la, lb) = (a.labels[p], b.labels[p]);
        if (la == NOISE) != (lb == NOISE) {
            return (false, 0); // noise sets must agree
        }
        if la == NOISE || a.is_core[p] {
            continue;
        }
        if fwd[la as usize] != lb {
            ties += 1;
        }
    }
    (true, ties)
}

fn run_sharded_scale(n: usize) -> Json {
    let specs = paper_table2_specs();
    let spec = specs.iter().find(|s| s.name == "DGB0.5M3D").expect("catalog spec");
    let data = spec.generate_n(n, SEED);
    let params = spec.params;
    let raw_bytes = data.len() * data.dim() * std::mem::size_of::<f64>();
    let budget = (raw_bytes / 2).max(1);
    println!(
        "[sharded_scale] n={n} dim={} eps={} min_pts={} raw={raw_bytes}B budget={budget}B",
        spec.dim, params.eps, params.min_pts
    );

    let dir = std::env::temp_dir().join(format!("mudbscan-emit-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("sharded temp dir");
    let path = dir.join("sharded_scale.muds");
    let chunk_cap = 4096usize;
    write_store(&data, &path, chunk_cap).expect("write chunk store");
    let store = ChunkedStore::open(&path).expect("open chunk store");

    // The in-memory reference this arm must reproduce bit-for-bit.
    let (mem, mem_wall) = timed(|| Runner::new(params).run(&data).expect("in-memory run"));

    let reps = env_usize("EMIT_BENCH_SHARDED_REPS", 1).max(1);
    let mut arms = Vec::new();
    let mut makespans = Vec::new();
    let mut clusterings = Vec::new();
    let mut budget_ok = true;
    for threads in [1usize, 4] {
        let runner = Runner::new(params).shards(8).threads(threads).memory_budget(budget);
        let mut best: Option<RunOutput> = None;
        let mut arm_ties = 0u64;
        for _ in 0..reps {
            let out = runner.run_source(&store).expect("sharded run");
            let (exact, ties) = paper_exact_structural(&out.clustering, &mem.clustering);
            if !exact {
                eprintln!("SHARDED DRIFT: t{threads} diverged from the in-memory run at n={n}");
                std::process::exit(1);
            }
            arm_ties = ties;
            let keep = match &best {
                Some(b) => makespan_of(&out.details) < makespan_of(&b.details),
                None => true,
            };
            if keep {
                best = Some(out);
            }
        }
        let out = best.expect("at least one rep");
        let RunDetails::Sharded {
            n_shards,
            threads: t,
            plan_secs,
            merge_secs,
            busy_max_secs,
            makespan_secs,
            wall_secs,
            peak_resident_bytes,
            halo_points,
            edges,
        } = out.details
        else {
            unreachable!("a sharded runner produces Sharded details");
        };
        println!(
            "[sharded_scale] t{t}: {n_shards} shards, makespan {makespan_secs:.3}s \
             (plan {plan_secs:.3}s busy {busy_max_secs:.3}s merge {merge_secs:.3}s), \
             peak resident {peak_resident_bytes}B"
        );
        budget_ok &= peak_resident_bytes <= budget;
        if n >= SHARDED_GATE_MIN_N && peak_resident_bytes > budget {
            eprintln!(
                "SHARDED RESIDENCY: t{t} peak {peak_resident_bytes}B exceeds the {budget}B budget"
            );
            std::process::exit(1);
        }
        let mut arm = Json::obj();
        arm.set("label", Json::Str(format!("sharded_t{t}")));
        arm.set("threads", count(t as u64));
        arm.set("n_shards", count(n_shards as u64));
        arm.set("plan_secs", num(plan_secs));
        arm.set("merge_secs", num(merge_secs));
        arm.set("busy_max_secs", num(busy_max_secs));
        arm.set("makespan_secs", num(makespan_secs));
        arm.set("wall_secs", num(wall_secs));
        arm.set("peak_resident_bytes", count(peak_resident_bytes as u64));
        arm.set("halo_points", count(halo_points));
        arm.set("edges", count(edges));
        arm.set("clusters", count(out.clustering.n_clusters as u64));
        arm.set("noise", count(out.clustering.noise_count() as u64));
        arm.set("matches_in_memory", Json::Bool(true));
        arm.set("border_ties", count(arm_ties));
        arms.push(arm);
        makespans.push(makespan_secs);
        clusterings.push(out.clustering);
    }
    let identical = clusterings[0] == clusterings[1];
    if !identical {
        // Unreachable while both match `mem`, but keep the direct check:
        // the t1 ≡ t4 bit is the contract this arm exists to pin.
        eprintln!("SHARDED DRIFT: t1 and t4 clusterings differ at n={n}");
        std::process::exit(1);
    }
    let speedup = makespans[0] / makespans[1].max(1e-12);
    println!("[sharded_scale] makespan speedup t1→t4: {speedup:.2}x");
    if n >= SHARDED_GATE_MIN_N && speedup < SHARDED_MIN_SPEEDUP {
        eprintln!(
            "SHARDED SCALING: t1→t4 makespan speedup {speedup:.2}x below {SHARDED_MIN_SPEEDUP}x"
        );
        std::process::exit(1);
    }

    // Naive-oracle equivalence at the overlap size, in every mode.
    let overlap_n = n.min(10_000);
    let overlap = spec.generate_n(overlap_n, SEED);
    let oracle = naive_dbscan(&overlap, &params);
    let small =
        Runner::new(params).shards(8).threads(4).run(&overlap).expect("overlap sharded run");
    if small.clustering != oracle {
        eprintln!("SHARDED DRIFT: overlap run at n={overlap_n} diverged from the naive oracle");
        std::process::exit(1);
    }

    let store_bytes = store.file_bytes();
    let mapped = store.is_mapped();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    let mut block = Json::obj();
    block.set("dataset", Json::Str(spec.name.to_string()));
    block.set("n", count(n as u64));
    block.set("dim", count(spec.dim as u64));
    block.set("eps", num(params.eps));
    block.set("min_pts", count(params.min_pts as u64));
    block.set("raw_bytes", count(raw_bytes as u64));
    block.set("memory_budget_bytes", count(budget as u64));
    block.set("store_file_bytes", count(store_bytes as u64));
    block.set("chunk_cap", count(chunk_cap as u64));
    block.set("store_mapped", Json::Bool(mapped));
    block.set("shards_requested", count(8));
    block.set("reps", count(reps as u64));
    block.set("in_memory_wall_secs", num(mem_wall));
    block.set("arms", Json::Arr(arms));
    block.set("identical_t1_t4", Json::Bool(true));
    block.set("budget_respected", Json::Bool(budget_ok));
    block.set("speedup_t1_t4", num(speedup));
    block.set(
        "oracle_overlap",
        Json::obj_from([
            ("n".to_string(), count(overlap_n as u64)),
            ("matches_oracle".to_string(), Json::Bool(true)),
        ]),
    );
    block
}

fn makespan_of(details: &RunDetails) -> f64 {
    match details {
        RunDetails::Sharded { makespan_secs, .. } => *makespan_secs,
        _ => f64::INFINITY,
    }
}

fn main() {
    let n = env_usize("EMIT_BENCH_N", 4000);
    let reps = env_usize("EMIT_BENCH_REPS", 5);
    let out_path =
        std::env::var("EMIT_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());

    bench::banner(
        "emit_bench",
        "machine-readable per-phase trajectory (all tables feed from these quantities)",
        &format!("{n} points per workload, seed {SEED}"),
    );

    let specs = paper_table2_specs();
    let mut workloads = Vec::new();
    let mut overhead_input: Option<(Dataset, DbscanParams)> = None;

    for name in WORKLOAD_NAMES {
        let spec = specs.iter().find(|s| s.name == name).expect("catalog spec");
        let data = spec.generate_n(n, SEED);
        let params = spec.params;
        println!("[{name}] n={n} dim={} eps={} min_pts={}", spec.dim, params.eps, params.min_pts);
        let reference = naive_dbscan(&data, &params);

        let mut runs = Vec::new();
        runs.push(run_one("mudbscan_seq", name, &data, &params, &reference, || {
            let out = Runner::new(params).run(&data).expect("sequential run");
            let meta = RunMeta::from_output(&out);
            (out.clustering, meta)
        }));
        let makespan_reps = env_usize("EMIT_BENCH_MAKESPAN_REPS", 5);
        for threads in [1usize, 4] {
            let label = format!("par_mudbscan_t{threads}");
            let runner = Runner::new(params).family(Family::Parallel).threads(threads);
            runs.push(run_one(&label, name, &data, &params, &reference, || {
                let out = runner.run(&data).expect("parallel run");
                let mut meta = RunMeta::from_output(&out);
                // The makespan is a single-digit-millisecond quantity, so a
                // single shot is at the mercy of the scheduler. Repeat the
                // construction (observability paused: counters and obs must
                // reflect exactly one run) and keep the minimum.
                obs::disable();
                for _ in 1..makespan_reps.max(1) {
                    let extra = runner.run(&data).expect("parallel run");
                    if let (Some(m), RunDetails::Parallel { build_stats: Some(s), .. }) =
                        (meta.tree_construction_makespan.as_mut(), &extra.details)
                    {
                        *m = m.min(s.makespan_secs);
                    }
                }
                obs::enable();
                (out.clustering, meta)
            }));
        }
        let mut fault_free_p4: Option<(Clustering, f64)> = None;
        for ranks in [1usize, 4] {
            let label = format!("mudbscan_d_p{ranks}");
            runs.push(run_one(&label, name, &data, &params, &reference, || {
                let out = Runner::new(params).ranks(ranks).run(&data).expect("dist run");
                let meta = RunMeta::from_output(&out);
                if ranks == 4 {
                    fault_free_p4 =
                        Some((out.clustering.clone(), meta.virtual_secs.unwrap_or(0.0)));
                }
                (out.clustering, meta)
            }));
        }
        // Schema v4: the faulted arm. Same 4-rank run under the pinned
        // all-classes fault plan; recovery must reproduce the fault-free
        // clustering bit-for-bit, and the fault block records what it cost.
        let (clean_clustering, clean_runtime) =
            fault_free_p4.expect("the p4 arm ran before the faulted arm");
        runs.push(run_one("mudbscan_d_p4_faults", name, &data, &params, &reference, || {
            let plan = bench_fault_plan();
            let out = Runner::new(params)
                .ranks(4)
                .fault_plan(plan.clone())
                .run(&data)
                .expect("faulted run");
            let mut meta = RunMeta::from_output(&out);
            let RunDetails::Distributed { runtime_secs, ref fault_stats, .. } = out.details else {
                unreachable!("a ranks(4) run is Distributed");
            };
            let clusters_match = out.clustering == clean_clustering;
            if !clusters_match {
                eprintln!(
                    "RECOVERY DRIFT: faulted p4 clustering diverged from fault-free on {name}"
                );
                std::process::exit(1);
            }
            meta.fault = Some(fault_json(
                plan.seed,
                fault_stats,
                out.phases.secs("recovery"),
                runtime_secs,
                clean_runtime,
                clusters_match,
            ));
            (out.clustering, meta)
        }));
        // Schema v6: the served-traffic arm (own harness — its exactness
        // checks run against the final *live* set, not the full dataset).
        runs.push(run_serve_traffic(name, &data, &params));
        // Schema v7: the delete-heavy twin arms. The repair arm must
        // beat the rebuild-every-structural-delete baseline ≥ 2× on the
        // per-batch latency p99 — gated fail-closed at full bench size
        // (the tiny CI smoke run only prints the ratio).
        let (repair_rec, repair_p99) =
            run_serve_delete_heavy("serve_delete_heavy", name, &data, &params, None);
        let (rebuild_rec, rebuild_p99) =
            run_serve_delete_heavy("serve_delete_heavy_rebuild", name, &data, &params, Some(0));
        println!(
            "[{name}] delete-heavy ingest_batch_us p99: repair {repair_p99:.0}us vs rebuild \
             {rebuild_p99:.0}us ({:.1}x)",
            rebuild_p99 / repair_p99.max(1.0)
        );
        if n >= 2000 && repair_p99 * 2.0 > rebuild_p99 {
            eprintln!(
                "REPAIR REGRESSION: delete-heavy ingest p99 {repair_p99:.0}us is not ≥2× better \
                 than the rebuild baseline {rebuild_p99:.0}us on {name}"
            );
            std::process::exit(1);
        }
        runs.push(repair_rec);
        runs.push(rebuild_rec);

        let mut w = Json::obj();
        w.set("dataset", Json::Str(name.to_string()));
        w.set("n", count(data.len() as u64));
        w.set("dim", count(spec.dim as u64));
        w.set("eps", num(params.eps));
        w.set("min_pts", count(params.min_pts as u64));
        w.set(
            "reference",
            Json::obj_from([
                ("clusters".to_string(), count(reference.n_clusters as u64)),
                ("noise".to_string(), count(reference.noise_count() as u64)),
            ]),
        );
        w.set("runs", Json::Arr(runs));
        workloads.push(w);

        // The largest (last) workload doubles as the overhead probe.
        overhead_input = Some((data, params));
    }

    let (od, op) = overhead_input.expect("at least one workload");
    let overhead = measure_overhead(&od, &op, reps);
    if let Ok(trace_path) = std::env::var("EMIT_BENCH_TRACE_OUT") {
        export_trace(&trace_path, &od, &op);
    }

    // Schema v9: the out-of-core sharded arm, at its own (much larger)
    // scale knob.
    let sharded_n = env_usize("EMIT_BENCH_SHARDED_N", 1_000_000);
    let sharded = run_sharded_scale(sharded_n);

    let mut root = Json::obj();
    root.set("schema_version", Json::Num(SCHEMA_VERSION as f64));
    root.set("seed", count(SEED));
    root.set("points_per_workload", count(n as u64));
    root.set("workloads", Json::Arr(workloads));
    root.set("overhead", overhead);
    root.set("sharded_scale", sharded);

    let text = root.render_pretty();
    std::fs::write(&out_path, &text).expect("write trajectory file");
    println!("\nwrote {out_path} ({} bytes)", text.len());
}
