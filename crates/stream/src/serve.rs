//! The concurrent serving layer: snapshot-isolated ingest/query engine.
//!
//! [`ServingMuDbscan`] turns the insertion-incremental engine into a
//! long-running service. A single **writer thread** owns a private
//! [`StreamingMuDbscan`] and applies batched operations — inserts plus
//! the deletion/TTL-expiry capability the bare streaming engine does
//! not have — then publishes an immutable epoch [`Snapshot`] through an
//! RCU-style pointer swap. Any number of concurrent readers answer
//! ε-neighbourhood and cluster-membership lookups against the snapshot
//! they pinned, never blocking on writer compute; an old epoch is freed
//! when its last pinned reader releases it (plain [`Arc`] reclamation).
//!
//! **Exactness contract.** Every published epoch's clustering is
//! *bit-identical* (`==` on [`Clustering`]) to a batch
//! `Runner`/[`StreamingMuDbscan::from_dataset`] run on the points live
//! at that epoch, in insertion order. Two mechanisms pay for this:
//!
//! * inserts are applied incrementally, then the writer publishes
//!   [`StreamingMuDbscan::canonical_snapshot`], which re-resolves
//!   border ties to the batch answer;
//! * a batch containing deletions or TTL expiries triggers an **exact
//!   rebuild** over the compacted live set (deletions can split
//!   clusters, so incremental maintenance would be approximate — the
//!   rebuild keeps the contract honest and is itself the parallel bulk
//!   loader).
//!
//! **Epochs and TTL.** The epoch counter is a deterministic logical
//! clock: it advances by one per applied batch, never by wall time. A
//! point inserted in epoch `e` with `ttl = d` (clamped to ≥ 1) is
//! excluded from every snapshot of epoch ≥ `e + d`. Deletes refer to
//! the external ids handed out by [`ServeHandle::ingest`] and apply to
//! points live at the start of the batch; unknown or already-dead ids
//! are counted (`serve/deletes_ignored`) and skipped, because ingest is
//! asynchronous and cannot report per-op errors.
//!
//! Per-operation latencies are recorded into `obs` histograms
//! (`serve/ingest_batch_us`, `serve/publish_us`, `serve/query_us`,
//! `serve/membership_us`) when collection is enabled — the bench
//! harness reports their p50/p99.
//!
//! Entry points: `Runner::serve` on the facade (preferred; see
//! `docs/SERVING.md`) or [`ServingMuDbscan::spawn`] directly.

use crate::incremental::StreamingMuDbscan;
use geom::{Dataset, DbscanParams, PointId};
use metrics::Counters;
use mudbscan::Clustering;
use rtree::{RTree, RTreeConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// External id of a served point: assigned at [`ServeHandle::ingest`]
/// time, stable across rebuilds (internal [`PointId`]s are not).
pub type ExtId = u64;

/// One operation inside an ingest batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOp {
    /// Insert a point, optionally expiring after `ttl` epochs (clamped
    /// to ≥ 1): inserted in epoch `e`, it is live in snapshots
    /// `e .. e + ttl` and gone from epoch `e + ttl` on.
    Insert {
        /// Point coordinates (must match the engine dimension).
        coords: Vec<f64>,
        /// Expiry in logical epochs, `None` to live forever.
        ttl: Option<u64>,
    },
    /// Delete a previously ingested point by external id. Unknown or
    /// already-dead ids are skipped (and counted under
    /// `serve/deletes_ignored`).
    Delete {
        /// The external id returned by [`ServeHandle::ingest`].
        id: ExtId,
    },
}

impl ServeOp {
    /// An insert with no expiry.
    pub fn insert(coords: Vec<f64>) -> Self {
        ServeOp::Insert { coords, ttl: None }
    }

    /// An insert expiring `ttl` epochs after its batch (clamped ≥ 1).
    pub fn insert_ttl(coords: Vec<f64>, ttl: u64) -> Self {
        ServeOp::Insert { coords, ttl: Some(ttl) }
    }

    /// A delete by external id.
    pub fn delete(id: ExtId) -> Self {
        ServeOp::Delete { id }
    }
}

/// Cluster membership of one live point inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Membership {
    /// Dense cluster label of the snapshot's clustering, `None` for
    /// noise.
    pub cluster: Option<u32>,
    /// Whether the point is a core point.
    pub is_core: bool,
}

/// Everything the serving layer can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Coordinates of the wrong dimensionality were passed to ingest or
    /// query.
    DimensionMismatch {
        /// The engine dimension fixed at spawn time.
        expected: usize,
        /// The offending slice length.
        got: usize,
    },
    /// The writer thread is gone: every handle was dropped and
    /// re-created impossibly, or the writer panicked. Pinned snapshots
    /// remain readable; ingest/drain cannot proceed.
    WriterGone,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: engine serves {expected}-d points, got {got}-d")
            }
            ServeError::WriterGone => write!(f, "the serving writer thread has shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// An immutable published epoch: the live points, their canonical
/// clustering, and an R-tree for ε-queries. Cheap to pin (one `Arc`
/// clone) and safe to read from any thread; it never changes after
/// publication.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    params: DbscanParams,
    data: Dataset,
    ext: Vec<ExtId>,
    lookup: HashMap<ExtId, PointId>,
    clustering: Clustering,
    index: RTree,
}

impl Snapshot {
    fn empty(dim: usize, params: DbscanParams) -> Self {
        Snapshot {
            epoch: 0,
            params,
            data: Dataset::empty(dim),
            ext: Vec::new(),
            lookup: HashMap::new(),
            clustering: Clustering::from_union_find(&mut unionfind::UnionFind::new(0), Vec::new()),
            index: RTree::new(dim),
        }
    }

    /// The logical epoch this snapshot was published at (0 = the empty
    /// pre-ingest snapshot; +1 per applied batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The density parameters the engine serves.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no points are live.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The live points, in insertion order. Running a batch `Runner` on
    /// this dataset reproduces [`Self::clustering`] bit-identically —
    /// that is the serving exactness contract, pinned by the
    /// conformance suite.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// External ids of the live points, parallel to [`Self::dataset`].
    pub fn live_ids(&self) -> &[ExtId] {
        &self.ext
    }

    /// The canonical clustering of the live points (labels indexed by
    /// dataset position, not external id).
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// External ids strictly within ε of `coords`, in insertion order.
    pub fn query(&self, coords: &[f64]) -> Result<Vec<ExtId>, ServeError> {
        if coords.len() != self.data.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.data.dim(),
                got: coords.len(),
            });
        }
        let mut hits: Vec<PointId> = Vec::new();
        self.index.search_sphere(coords, self.params.eps, |p| hits.push(p));
        hits.sort_unstable();
        Ok(hits.into_iter().map(|p| self.ext[p as usize]).collect())
    }

    /// Cluster membership of a live point, `None` when the id is
    /// unknown, deleted, or expired in this epoch.
    pub fn membership(&self, id: ExtId) -> Option<Membership> {
        let p = *self.lookup.get(&id)?;
        let label = self.clustering.labels[p as usize];
        Some(Membership {
            cluster: (label != mudbscan::NOISE).then_some(label),
            is_core: self.clustering.is_core[p as usize],
        })
    }
}

/// What [`ServeHandle::drain`] returns: the snapshot current once every
/// previously enqueued batch was applied, plus a copy of the writer's
/// operation counters up to that point.
#[derive(Debug)]
pub struct Drained {
    /// The post-drain snapshot (also installed as current).
    pub snapshot: Arc<Snapshot>,
    /// Writer-side operation counters (queries, distances, unions)
    /// accumulated by the streaming engine, rebuilds included.
    pub counters: Counters,
}

enum Cmd {
    Batch { ops: Vec<ServeOp>, ids: Vec<ExtId> },
    Flush { ack: Sender<Drained> },
}

struct Shared {
    dim: usize,
    current: Mutex<Arc<Snapshot>>,
    next_id: AtomicU64,
}

/// Joins the writer thread when the last [`ServeHandle`] drops. The
/// handle's command sender is declared before this guard, so by the
/// time the final guard drops the channel is closed and the writer is
/// already exiting.
struct WriterGuard {
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for WriterGuard {
    fn drop(&mut self) {
        if let Ok(mut slot) = self.handle.lock() {
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
        }
    }
}

/// A clonable, thread-safe handle to a running [`ServingMuDbscan`].
///
/// Ingest enqueues to the writer and returns immediately with the
/// assigned external ids; queries and membership lookups pin the
/// current [`Snapshot`] and answer from it without ever waiting on
/// writer compute. Dropping the last handle shuts the writer down and
/// joins it.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    // Field order matters: `tx` must drop before `writer` so the last
    // handle closes the channel (stopping the writer) before joining.
    tx: Sender<Cmd>,
    // Held only for its drop-on-last-handle join; never read.
    #[allow(dead_code)]
    writer: Arc<WriterGuard>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle").field("dim", &self.shared.dim).finish_non_exhaustive()
    }
}

impl ServeHandle {
    /// Enqueue one batch of operations; the batch becomes one epoch.
    /// Returns the external ids assigned to the batch's inserts, in op
    /// order, without waiting for the batch to be applied (see
    /// [`Self::drain`] for the rendezvous).
    pub fn ingest(&self, ops: Vec<ServeOp>) -> Result<Vec<ExtId>, ServeError> {
        let mut ids = Vec::new();
        for op in &ops {
            if let ServeOp::Insert { coords, .. } = op {
                if coords.len() != self.shared.dim {
                    return Err(ServeError::DimensionMismatch {
                        expected: self.shared.dim,
                        got: coords.len(),
                    });
                }
                ids.push(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
            }
        }
        self.tx.send(Cmd::Batch { ops, ids: ids.clone() }).map_err(|_| ServeError::WriterGone)?;
        Ok(ids)
    }

    /// Pin the current snapshot: one `Arc` clone under a lock held for
    /// two reference-count operations — readers never wait on writer
    /// compute, and the epoch stays alive (and immutable) for as long
    /// as the returned `Arc` does.
    pub fn pin(&self) -> Arc<Snapshot> {
        self.shared.current.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The epoch of the currently published snapshot.
    pub fn snapshot_epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// ε-neighbourhood lookup against the current snapshot: external
    /// ids strictly within ε of `coords`. Records `serve/query_us`.
    pub fn query(&self, coords: &[f64]) -> Result<Vec<ExtId>, ServeError> {
        let t = obs::enabled().then(Instant::now);
        let out = self.pin().query(coords);
        if let Some(t) = t {
            obs::record_hist("serve/query_us", t.elapsed().as_micros() as u64);
        }
        out
    }

    /// Cluster membership of `id` in the current snapshot (`None` for
    /// unknown, deleted, or expired ids). Records `serve/membership_us`.
    pub fn membership(&self, id: ExtId) -> Option<Membership> {
        let t = obs::enabled().then(Instant::now);
        let out = self.pin().membership(id);
        if let Some(t) = t {
            obs::record_hist("serve/membership_us", t.elapsed().as_micros() as u64);
        }
        out
    }

    /// Rendezvous with the writer: blocks until every batch enqueued
    /// before this call has been applied and published, then returns
    /// that snapshot plus the writer's counters. Batches enqueued
    /// concurrently by other handles may or may not be included.
    pub fn drain(&self) -> Result<Drained, ServeError> {
        let (ack, rx) = mpsc::channel();
        self.tx.send(Cmd::Flush { ack }).map_err(|_| ServeError::WriterGone)?;
        rx.recv().map_err(|_| ServeError::WriterGone)
    }

    /// Drain, then drop this handle. When it is the last handle the
    /// writer thread exits and is joined before this returns.
    pub fn shutdown(self) -> Result<Drained, ServeError> {
        let out = self.drain()?;
        drop(self);
        Ok(out)
    }
}

/// The writer-side engine: owns the private [`StreamingMuDbscan`] plus
/// the external-id / TTL bookkeeping, applies one enqueued batch per
/// epoch, and publishes immutable [`Snapshot`]s. Constructed only via
/// [`ServingMuDbscan::spawn`], which moves it onto its writer thread.
pub struct ServingMuDbscan {
    shared: Arc<Shared>,
    rx: Receiver<Cmd>,
    stream: StreamingMuDbscan,
    /// Internal id → external id, parallel to the stream's dataset.
    ext: Vec<ExtId>,
    /// Internal id → first epoch the point is dead in (`u64::MAX` =
    /// lives forever).
    expire_at: Vec<u64>,
    lookup: HashMap<ExtId, PointId>,
    epoch: u64,
}

impl ServingMuDbscan {
    /// Spawn the writer thread for a `dim`-dimensional engine and
    /// return the first handle to it. Prefer `Runner::serve` on the
    /// facade, which validates the configuration first.
    pub fn spawn(dim: usize, params: DbscanParams) -> ServeHandle {
        assert!(dim > 0, "dimension must be positive");
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            dim,
            current: Mutex::new(Arc::new(Snapshot::empty(dim, params))),
            next_id: AtomicU64::new(0),
        });
        let writer = ServingMuDbscan {
            shared: Arc::clone(&shared),
            rx,
            stream: StreamingMuDbscan::empty(dim, params),
            ext: Vec::new(),
            expire_at: Vec::new(),
            lookup: HashMap::new(),
            epoch: 0,
        };
        let handle = std::thread::Builder::new()
            .name("mudbscan-serve-writer".into())
            .spawn(move || writer.run())
            .expect("failed to spawn the serving writer thread");
        ServeHandle {
            shared,
            tx,
            writer: Arc::new(WriterGuard { handle: Mutex::new(Some(handle)) }),
        }
    }

    fn run(mut self) {
        while let Ok(cmd) = self.rx.recv() {
            match cmd {
                Cmd::Batch { ops, ids } => {
                    let t = obs::enabled().then(Instant::now);
                    self.apply(ops, ids);
                    if let Some(t) = t {
                        obs::record_hist("serve/ingest_batch_us", t.elapsed().as_micros() as u64);
                    }
                }
                Cmd::Flush { ack } => {
                    let counters = Counters::new();
                    counters.absorb(self.stream.counters());
                    let snapshot =
                        self.shared.current.lock().unwrap_or_else(|e| e.into_inner()).clone();
                    let _ = ack.send(Drained { snapshot, counters });
                }
            }
        }
    }

    /// Apply one batch as one epoch: expiries and deletes first
    /// (against the points live at the start of the batch), then
    /// inserts, then publish.
    fn apply(&mut self, ops: Vec<ServeOp>, ids: Vec<ExtId>) {
        self.epoch += 1;

        let n = self.stream.len();
        let mut dead = vec![false; n];
        let mut expiries = 0u64;
        let mut deletes = 0u64;
        let mut ignored = 0u64;
        for (p, &at) in self.expire_at.iter().enumerate() {
            if at <= self.epoch {
                dead[p] = true;
                expiries += 1;
            }
        }
        for op in &ops {
            if let ServeOp::Delete { id } = op {
                match self.lookup.get(id) {
                    Some(&p) if !dead[p as usize] => {
                        dead[p as usize] = true;
                        deletes += 1;
                    }
                    _ => ignored += 1,
                }
            }
        }
        if expiries + deletes > 0 {
            self.rebuild(&dead);
            obs::record_count("serve/rebuilds", 1);
        }
        obs::record_count("serve/expiries", expiries);
        obs::record_count("serve/deletes", deletes);
        obs::record_count("serve/deletes_ignored", ignored);

        let mut next = ids.into_iter();
        let mut inserts = 0u64;
        for op in ops {
            if let ServeOp::Insert { coords, ttl } = op {
                let ext = next.next().expect("one pre-assigned id per insert");
                let p = self.stream.insert(&coords);
                debug_assert_eq!(p as usize, self.ext.len());
                self.ext.push(ext);
                self.expire_at.push(ttl.map_or(u64::MAX, |d| self.epoch.saturating_add(d.max(1))));
                self.lookup.insert(ext, p);
                inserts += 1;
            }
        }
        obs::record_count("serve/inserts", inserts);

        self.publish();
    }

    /// Exact rebuild over the compacted live set. Deletions can split
    /// clusters, so no incremental shortcut is taken: the surviving
    /// points (insertion order preserved) go back through the parallel
    /// bulk loader, whose result is exact by construction.
    fn rebuild(&mut self, dead: &[bool]) {
        let dim = self.shared.dim;
        let mut data = Dataset::empty(dim);
        let mut ext = Vec::new();
        let mut expire_at = Vec::new();
        for (p, &is_dead) in dead.iter().enumerate() {
            if is_dead {
                self.lookup.remove(&self.ext[p]);
                continue;
            }
            data.push(self.stream.point(p as PointId));
            ext.push(self.ext[p]);
            expire_at.push(self.expire_at[p]);
        }
        let counters = Counters::new();
        counters.absorb(self.stream.counters());
        self.stream = StreamingMuDbscan::from_dataset(&data, self.stream.params());
        // Carry the pre-rebuild operation counts forward so `drain`
        // reports totals across the engine's whole life.
        self.stream.counters().absorb(&counters);
        self.lookup = ext.iter().enumerate().map(|(p, &e)| (e, p as PointId)).collect();
        self.ext = ext;
        self.expire_at = expire_at;
    }

    fn publish(&mut self) {
        let t = obs::enabled().then(Instant::now);
        let data = self.stream.dataset().clone();
        let index = RTree::bulk_load_points(
            self.shared.dim,
            RTreeConfig::default(),
            data.iter().map(|(p, c)| (p, c.to_vec())),
        );
        let snap = Arc::new(Snapshot {
            epoch: self.epoch,
            params: self.stream.params(),
            clustering: self.stream.canonical_snapshot(),
            ext: self.ext.clone(),
            lookup: self.lookup.clone(),
            data,
            index,
        });
        *self.shared.current.lock().unwrap_or_else(|e| e.into_inner()) = snap;
        obs::record_count("serve/epochs", 1);
        if let Some(t) = t {
            obs::record_hist("serve/publish_us", t.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudbscan::{check_exact, naive_dbscan};

    fn params() -> DbscanParams {
        DbscanParams::new(1.0, 3)
    }

    fn batch_oracle(data: &Dataset, p: DbscanParams) -> Clustering {
        let mut s = StreamingMuDbscan::from_dataset(data, p);
        s.snapshot()
    }

    #[test]
    fn empty_engine_serves_epoch_zero() {
        let h = ServingMuDbscan::spawn(2, params());
        let snap = h.pin();
        assert_eq!(snap.epoch(), 0);
        assert!(snap.is_empty());
        assert_eq!(h.query(&[0.0, 0.0]).unwrap(), Vec::<ExtId>::new());
        assert_eq!(h.membership(7), None);
    }

    #[test]
    fn ingest_then_drain_matches_batch() {
        let h = ServingMuDbscan::spawn(1, params());
        let rows = [[0.0], [0.5], [-0.5], [10.0]];
        let ids = h.ingest(rows.iter().map(|r| ServeOp::insert(r.to_vec())).collect()).unwrap();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.epoch(), 1);
        let want = batch_oracle(d.snapshot.dataset(), params());
        assert_eq!(*d.snapshot.clustering(), want, "epoch not bit-identical to batch");
        assert_eq!(h.membership(0), Some(Membership { cluster: Some(0), is_core: true }));
        assert_eq!(h.membership(3), Some(Membership { cluster: None, is_core: false }));
        assert_eq!(h.query(&[0.1]).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn every_epoch_is_bit_identical_to_its_prefix_batch() {
        let h = ServingMuDbscan::spawn(2, params());
        let batches: Vec<Vec<Vec<f64>>> = vec![
            vec![vec![0.0, 0.0], vec![0.5, 0.0], vec![0.0, 0.5]],
            vec![vec![5.0, 5.0], vec![5.5, 5.0]],
            vec![vec![5.0, 5.5], vec![0.5, 0.5], vec![9.0, -9.0]],
        ];
        for batch in batches {
            h.ingest(batch.into_iter().map(ServeOp::insert).collect()).unwrap();
            let d = h.drain().unwrap();
            let want = batch_oracle(d.snapshot.dataset(), params());
            assert_eq!(*d.snapshot.clustering(), want, "epoch {}", d.snapshot.epoch());
            let rep = check_exact(
                d.snapshot.clustering(),
                &naive_dbscan(d.snapshot.dataset(), &params()),
                d.snapshot.dataset(),
                &params(),
            );
            assert!(rep.is_exact(), "epoch {}: {rep:?}", d.snapshot.epoch());
        }
        assert_eq!(h.snapshot_epoch(), 3);
    }

    #[test]
    fn deletes_remove_points_and_stay_exact() {
        let h = ServingMuDbscan::spawn(1, params());
        let ids = h
            .ingest(
                [[0.0], [0.5], [-0.5], [0.2]].iter().map(|r| ServeOp::insert(r.to_vec())).collect(),
            )
            .unwrap();
        assert_eq!(h.drain().unwrap().snapshot.clustering().n_clusters, 1);
        // Delete two members; the survivors can no longer form a cluster.
        h.ingest(vec![ServeOp::delete(ids[1]), ServeOp::delete(ids[2])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 2);
        assert_eq!(d.snapshot.clustering().n_clusters, 0);
        assert_eq!(d.snapshot.membership(ids[1]), None);
        assert!(d.snapshot.membership(ids[0]).is_some());
        let want = batch_oracle(d.snapshot.dataset(), params());
        assert_eq!(*d.snapshot.clustering(), want);
        // Deleting again is an ignored no-op, not an error.
        h.ingest(vec![ServeOp::delete(ids[1])]).unwrap();
        assert_eq!(h.drain().unwrap().snapshot.len(), 2);
    }

    #[test]
    fn ttl_expires_on_the_logical_clock() {
        let h = ServingMuDbscan::spawn(1, params());
        // Epoch 1: a point with ttl 2 (dead from epoch 3 on) + one forever.
        let ids =
            h.ingest(vec![ServeOp::insert_ttl(vec![0.0], 2), ServeOp::insert(vec![0.5])]).unwrap();
        assert_eq!(h.drain().unwrap().snapshot.len(), 2);
        // Epoch 2: still live.
        h.ingest(vec![ServeOp::insert(vec![-0.5])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 3);
        assert_eq!(d.snapshot.clustering().n_clusters, 1);
        // Epoch 3: the TTL point expires before the batch's insert.
        h.ingest(vec![ServeOp::insert(vec![9.0])]).unwrap();
        let d = h.drain().unwrap();
        assert_eq!(d.snapshot.len(), 3);
        assert_eq!(d.snapshot.membership(ids[0]), None);
        let want = batch_oracle(d.snapshot.dataset(), params());
        assert_eq!(*d.snapshot.clustering(), want);
    }

    #[test]
    fn pinned_snapshots_survive_later_epochs() {
        let h = ServingMuDbscan::spawn(1, params());
        h.ingest(vec![ServeOp::insert(vec![0.0])]).unwrap();
        h.drain().unwrap();
        let pinned = h.pin();
        h.ingest(vec![ServeOp::insert(vec![0.5]), ServeOp::insert(vec![-0.5])]).unwrap();
        h.drain().unwrap();
        // The pinned epoch is unchanged even though the engine moved on.
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.len(), 1);
        assert_eq!(h.pin().epoch(), 2);
        assert_eq!(h.pin().len(), 3);
    }

    #[test]
    fn dimension_mismatch_is_rejected_up_front() {
        let h = ServingMuDbscan::spawn(2, params());
        let err = h.ingest(vec![ServeOp::insert(vec![0.0])]).unwrap_err();
        assert_eq!(err, ServeError::DimensionMismatch { expected: 2, got: 1 });
        let err = h.query(&[0.0]).unwrap_err();
        assert_eq!(err, ServeError::DimensionMismatch { expected: 2, got: 1 });
        // The failed batch assigned no ids and changed no state.
        assert_eq!(h.drain().unwrap().snapshot.epoch(), 0);
        assert_eq!(h.ingest(vec![ServeOp::insert(vec![0.0, 0.0])]).unwrap(), vec![0]);
    }

    #[test]
    fn handles_clone_and_shutdown_joins() {
        let h = ServingMuDbscan::spawn(1, params());
        let h2 = h.clone();
        h2.ingest(vec![ServeOp::insert(vec![0.0])]).unwrap();
        drop(h2);
        let d = h.shutdown().unwrap();
        assert_eq!(d.snapshot.len(), 1);
        assert!(d.counters.range_queries() > 0);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_epoch() {
        let h = ServingMuDbscan::spawn(1, params());
        std::thread::scope(|s| {
            let mut readers = Vec::new();
            for _ in 0..3 {
                let r = h.clone();
                readers.push(s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let snap = r.pin();
                        // Epochs advance monotonically per reader, and a
                        // snapshot is internally consistent: parallel
                        // arrays agree in length.
                        assert!(snap.epoch() >= last);
                        last = snap.epoch();
                        assert_eq!(snap.live_ids().len(), snap.len());
                        assert_eq!(snap.clustering().labels.len(), snap.len());
                        let _ = r.query(&[0.25]);
                    }
                    last
                }));
            }
            for i in 0..20 {
                h.ingest(vec![ServeOp::insert(vec![i as f64 * 0.1])]).unwrap();
            }
            h.drain().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });
        assert_eq!(h.snapshot_epoch(), 20);
    }
}
