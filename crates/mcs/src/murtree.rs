//! The μR-tree: level-1 R-tree over MC centers + per-MC auxiliary trees,
//! reachable-MC lists (Lemma 3) and the restricted ε-neighbourhood query
//! (paper Algorithm 6, FIND-NBHD).

use crate::micro::{McId, MicroCluster};
use geom::{Dataset, PointId};
use metrics::Counters;
use rtree::{QueryCost, RTree};

/// The two-level spatial index of μDBSCAN plus the point→MC assignment.
#[derive(Debug, Clone)]
pub struct MuRTree {
    /// The ε the structure was built for (all queries use this radius).
    pub eps: f64,
    /// Level-1 R-tree; items are [`McId`]s located at their center points.
    level1: RTree,
    /// All micro-clusters.
    pub mcs: Vec<MicroCluster>,
    /// `assignment[p]` is the MC that point `p` belongs to.
    pub assignment: Vec<McId>,
}

impl MuRTree {
    /// Assemble from construction output (see [`crate::build_micro_clusters`]).
    pub fn from_parts(
        eps: f64,
        level1: RTree,
        mcs: Vec<MicroCluster>,
        assignment: Vec<McId>,
    ) -> Self {
        Self { eps, level1, mcs, assignment }
    }

    /// Number of micro-clusters (`m` in the paper's complexity analysis).
    pub fn mc_count(&self) -> usize {
        self.mcs.len()
    }

    /// Average members per MC (`r` in the complexity analysis).
    pub fn avg_mc_size(&self) -> f64 {
        if self.mcs.is_empty() {
            0.0
        } else {
            self.assignment.len() as f64 / self.mcs.len() as f64
        }
    }

    /// The level-1 tree (read-only; exposed for diagnostics/benches).
    pub fn level1(&self) -> &RTree {
        &self.level1
    }

    /// Compute every MC's reachable list — all MCs whose center lies
    /// strictly within 3ε (paper Algorithm 5; strict `<` is sufficient
    /// because all distances in Lemma 3's chain are strict).
    ///
    /// The list always contains the MC itself.
    pub fn compute_reachable(&mut self, data: &Dataset, counters: &Counters) {
        let _span = obs::span!("find_reachable");
        let r = 3.0 * self.eps;
        let mut reach_total = 0u64;
        for i in 0..self.mcs.len() {
            let center = self.mcs[i].center;
            let mut reach = Vec::new();
            let cost = self.level1.search_sphere(data.point(center), r, |mc| reach.push(mc));
            counters.count_dists(cost.mbr_tests);
            counters.count_node_visits(cost.nodes_visited.max(1));
            debug_assert!(reach.contains(&(i as McId)));
            reach_total += reach.len() as u64;
            self.mcs[i].reach = reach;
        }
        if obs::enabled() {
            obs::record_count("mc/reach_list_entries", reach_total);
        }
    }

    /// Restricted ε-neighbourhood query for dataset point `p`
    /// (FIND-NBHD): search only the auxiliary trees of `p`'s MC's
    /// reachable list, and only those whose member-MBR meets the open
    /// ε-ball of `p`. Appends neighbour ids (including `p` itself) to
    /// `out` and returns the query cost.
    pub fn neighborhood(&self, data: &Dataset, p: PointId, out: &mut Vec<PointId>) -> QueryCost {
        let coords = data.point(p);
        let z = self.assignment[p as usize];
        let eps_sq = self.eps * self.eps;
        let mut cost = QueryCost::default();
        for &r in &self.mcs[z as usize].reach {
            let mc = &self.mcs[r as usize];
            cost.mbr_tests += 1;
            if mc.mbr.min_dist_sq(coords) < eps_sq {
                let aux = mc.aux.as_ref().expect("aux trees must be built before queries");
                cost.add(aux.search_sphere(coords, self.eps, |q| out.push(q)));
            }
        }
        cost
    }

    /// The reachable MC ids of the MC that `p` belongs to.
    pub fn reach_of(&self, p: PointId) -> &[McId] {
        &self.mcs[self.assignment[p as usize] as usize].reach
    }

    /// Count micro-clusters by kind: `(dense, core, sparse)` — the mix
    /// that determines how many wndq-core points exist (Table II's
    /// "% query saves" is driven by the DMC share).
    pub fn kind_histogram(&self, params: &geom::DbscanParams) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for mc in &self.mcs {
            match mc.kind(params) {
                crate::McKind::Dense => h.0 += 1,
                crate::McKind::Core => h.1 += 1,
                crate::McKind::Sparse => h.2 += 1,
            }
        }
        h
    }

    /// Estimated heap footprint in bytes (level-1 tree, MC records,
    /// assignment vector).
    pub fn heap_bytes(&self) -> usize {
        self.level1.heap_bytes()
            + self.assignment.capacity() * std::mem::size_of::<McId>()
            + self.mcs.capacity() * std::mem::size_of::<MicroCluster>()
            + self.mcs.iter().map(|m| m.heap_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_micro_clusters, BuildOptions};
    use geom::dist_euclidean;

    fn grid(n: usize, step: f64) -> Dataset {
        let mut rows = Vec::new();
        for i in 0..n {
            for j in 0..n {
                rows.push(vec![i as f64 * step, j as f64 * step]);
            }
        }
        Dataset::from_rows(&rows)
    }

    fn built(data: &Dataset, eps: f64) -> MuRTree {
        let c = Counters::new();
        let mut t = build_micro_clusters(data, eps, &BuildOptions::default(), &c);
        t.compute_reachable(data, &c);
        t
    }

    #[test]
    fn reachable_matches_brute_force() {
        let data = grid(12, 0.5);
        let eps = 1.0;
        let t = built(&data, eps);
        for (i, mc) in t.mcs.iter().enumerate() {
            let mut want: Vec<McId> = t
                .mcs
                .iter()
                .enumerate()
                .filter(|(_, other)| {
                    dist_euclidean(data.point(mc.center), data.point(other.center)) < 3.0 * eps
                })
                .map(|(j, _)| j as McId)
                .collect();
            want.sort_unstable();
            let mut got = mc.reach.clone();
            got.sort_unstable();
            assert_eq!(got, want, "MC {i}");
            assert!(got.contains(&(i as McId)));
        }
    }

    #[test]
    fn neighborhood_is_exact() {
        let data = grid(15, 0.45);
        let eps = 1.0;
        let t = built(&data, eps);
        for p in [0u32, 7, 100, 224] {
            let mut got = Vec::new();
            let cost = t.neighborhood(&data, p, &mut got);
            got.sort_unstable();
            let mut want: Vec<PointId> = data
                .iter()
                .filter(|(_, q)| dist_euclidean(data.point(p), q) < eps)
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "point {p}");
            assert!(got.contains(&p), "neighbourhood must contain the point itself");
            assert!(cost.nodes_visited > 0);
        }
    }

    #[test]
    fn neighborhood_skips_far_mcs() {
        // Two far-apart blobs: queries in one must not search the other's
        // aux tree.
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![i as f64 * 0.1, 0.0]);
            rows.push(vec![1000.0 + i as f64 * 0.1, 0.0]);
        }
        let data = Dataset::from_rows(&rows);
        let t = built(&data, 1.0);
        assert!(t.mc_count() >= 2);
        let mut out = Vec::new();
        t.neighborhood(&data, 0, &mut out);
        assert!(out.iter().all(|&q| data.point(q)[0] < 500.0));
        // Reach list of the left blob's MCs excludes right-blob MCs.
        for &r in t.reach_of(0) {
            assert!(data.point(t.mcs[r as usize].center)[0] < 500.0);
        }
    }

    #[test]
    fn stats_accessors() {
        let data = grid(10, 0.5);
        let t = built(&data, 1.0);
        assert!(t.mc_count() > 0);
        assert!(t.avg_mc_size() >= 1.0);
        assert!(t.heap_bytes() > 0);
        assert_eq!(t.level1().len(), t.mc_count());
    }

    #[test]
    fn kind_histogram_partitions_mcs() {
        let data = grid(12, 0.25); // dense grid: most MCs should be dense
        let t = built(&data, 1.0);
        let params = geom::DbscanParams::new(1.0, 5);
        let (d, c, s) = t.kind_histogram(&params);
        assert_eq!(d + c + s, t.mc_count());
        assert!(d > 0, "a dense grid must produce dense MCs");
        // With MinPts above every MC size, everything is sparse.
        let params_hard = geom::DbscanParams::new(1.0, 10_000);
        let (d2, c2, s2) = t.kind_histogram(&params_hard);
        assert_eq!((d2, c2), (0, 0));
        assert_eq!(s2, t.mc_count());
    }
}
