//! Table V reproduction: distributed runtime on 32 (simulated) ranks —
//! PDSDBSCAN-D, GridDBSCAN-D, HPDBSCAN, RP-DBSCAN and μDBSCAN-D.
//!
//! ```text
//! cargo run --release -p bench --bin repro_table5
//! ```

use bench::{banner, secs, timed, SEED};
use dist::{DistConfig, GridDbscanD, HpDbscan, PdsDbscanD, RpDbscan};
use geom::DbscanParams;
use metrics::Table;
use mudbscan::prelude::{RunDetails, Runner};

const RANKS: usize = 32;

/// One Table V workload: name, paper size, scaled n, dimension, params,
/// and which baselines the paper could run on it (`-` rows are skipped —
/// the paper's binaries were "not capable of handling a large number of
/// floating points / high dimensional data" there, and our analogues
/// reproduce exactly that regime, e.g. R-trees degenerating at d >= 14).
struct Workload {
    name: &'static str,
    n: usize,
    d: usize,
    params: DbscanParams,
    paper_ran_pds: bool,
    paper_ran_grid: bool,
    paper_ran_hp: bool,
    paper_ran_rp: bool,
}

fn workloads() -> Vec<Workload> {
    let w = |name, n, d, eps, min_pts, pds, grid, hp, rp| Workload {
        name,
        n,
        d,
        params: DbscanParams::new(eps, min_pts),
        paper_ran_pds: pds,
        paper_ran_grid: grid,
        paper_ran_hp: hp,
        paper_ran_rp: rp,
    };
    vec![
        w("MPAGD8M3D", 60_000, 3, 0.7, 5, true, true, true, true),
        w("MPAGD100M3D", 100_000, 3, 0.7, 5, true, true, true, true),
        w("FOF56M3D", 80_000, 3, 1.4, 6, true, true, true, true),
        w("FOF28M14D", 20_000, 14, 16.0, 5, false, false, false, true),
        w("KDDB145K14D", 10_000, 14, 45.0, 5, true, true, false, true),
        w("KDDB145K74D", 6_000, 74, 120.0, 5, false, false, false, false),
        w("MPAGD1B3D", 150_000, 3, 0.5, 5, false, false, false, false),
        w("FOF500M3D", 120_000, 3, 1.2, 5, false, false, false, false),
    ]
}

const PAPER: &[(&str, &str, &str, &str, &str, &str)] = &[
    ("MPAGD8M3D", "37.7", "169.38", "10.85", "1832.99", "23.97"),
    ("MPAGD100M3D", "468.72", "1369.41", "140.85", "58883.56", "345.95"),
    ("FOF56M3D", "185.78", "423.24", "10", "2030.35", "123.31"),
    ("FOF28M14D", "-", "-", "-", "6516.56", "1631.58"),
    ("KDDB145K14D", "126.82", "483.87", "-", "115.8", "8.15"),
    ("KDDB145K74D", "-", "-", "-", "-", "460"),
    ("MPAGD1B3D", "-", "-", "-", "-", "2474.23"),
    ("FOF500M3D", "-", "-", "-", "-", "4229.81"),
];

fn generate(name: &str, n: usize, d: usize) -> geom::Dataset {
    if name.starts_with("KDDB") {
        data::kddbio(n, d, SEED)
    } else {
        data::galaxy(n, d, SEED)
    }
}

fn main() {
    banner(
        "Table V — distributed runtime on 32 ranks",
        "PDSDBSCAN-D / GridDBSCAN-D / HPDBSCAN / RP-DBSCAN / μDBSCAN-D (seconds)",
        "virtual BSP makespans; paper sizes 145K–1B scaled to 6K–150K",
    );

    let mut ours = Table::new(&[
        "dataset",
        "n",
        "d",
        "PDSDBSCAN-D",
        "GridDBSCAN-D",
        "HPDBSCAN",
        "RP-DBSCAN",
        "μDBSCAN-D",
        "μ wins?",
    ]);

    for wl in workloads() {
        let (name, n, d, params) = (wl.name, wl.n, wl.d, wl.params);
        let dataset = generate(name, n, d);
        eprintln!("[{name}] n={n} d={d} ...");
        let cfg = DistConfig::new(RANKS);

        let mu = Runner::new(params).ranks(RANKS).run(&dataset).expect("μDBSCAN-D must run");
        let mu_t = match mu.details {
            RunDetails::Distributed { runtime_secs, .. } => runtime_secs,
            ref other => panic!("expected Distributed details, got {other:?}"),
        };

        let (pds_cell, pds_t) = if wl.paper_ran_pds {
            let pds = PdsDbscanD::new(params, cfg).run(&dataset).expect("PDSDBSCAN-D must run");
            assert_eq!(pds.clustering.n_clusters, mu.clustering.n_clusters, "{name}");
            (secs(pds.runtime_secs), Some(pds.runtime_secs))
        } else {
            ("-".to_string(), None)
        };

        let grid_cell = if wl.paper_ran_grid {
            match GridDbscanD::new(params, cfg).run(&dataset) {
                Ok(out) => {
                    assert_eq!(out.clustering.n_clusters, mu.clustering.n_clusters, "{name}");
                    secs(out.runtime_secs)
                }
                Err(_) => "MemErr".to_string(),
            }
        } else {
            "-".to_string()
        };

        let hp_cell = if wl.paper_ran_hp {
            match HpDbscan::new(params, RANKS).run(&dataset) {
                Ok(out) => secs(out.runtime_secs),
                Err(_) => "MemErr".to_string(),
            }
        } else {
            "-".to_string()
        };

        let rp_cell = if wl.paper_ran_rp {
            let (rp, rp_t) = timed(|| RpDbscan::new(params, RANKS).run(&dataset));
            let rp_delta = rp.clustering.n_clusters as i64 - mu.clustering.n_clusters as i64;
            // Quantify the approximation against the exact clustering (the
            // paper only reports cluster-count deviations for approximate
            // competitors; ARI is the principled version).
            let rp_ari = mudbscan::adjusted_rand_index(&rp.clustering, &mu.clustering);
            format!("{} (Δk={rp_delta:+}, ARI={rp_ari:.2})", secs(rp_t))
        } else {
            "-".to_string()
        };

        ours.row(&[
            name.to_string(),
            n.to_string(),
            d.to_string(),
            pds_cell,
            grid_cell,
            hp_cell,
            rp_cell,
            secs(mu_t),
            match pds_t {
                Some(t) if mu_t <= t => "vs PDS ✓".into(),
                Some(_) => "vs PDS ✗".to_string(),
                None => "only μ runs".into(),
            },
        ]);
    }

    println!("measured (virtual makespans on {RANKS} simulated ranks):");
    ours.print();

    println!("\npaper values (32 real nodes, seconds; '-' = could not run):");
    let mut paper = Table::new(&[
        "dataset",
        "PDSDBSCAN-D",
        "GridDBSCAN-D",
        "HPDBSCAN",
        "RP-DBSCAN",
        "μDBSCAN-D",
    ]);
    for &(name, a, b, c, d_, e) in PAPER {
        paper.row_str(&[name, a, b, c, d_, e]);
    }
    paper.print();

    println!("\nshape checks: μDBSCAN-D beats PDSDBSCAN-D and GridDBSCAN-D");
    println!("everywhere; RP-DBSCAN is slowest (and approximate: Δk is its");
    println!("cluster-count deviation); HPDBSCAN is competitive on low-d grids;");
    println!("only μDBSCAN-D handles every row (largest/high-d workloads).");
}
