//! Distributed scaling demo: run μDBSCAN-D at increasing rank counts on
//! the BSP simulator and print the virtual-time speedup curve (a small
//! interactive version of the paper's Fig. 7).
//!
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use mudbscan_repro::prelude::*;

fn main() {
    let dataset = data::galaxy(50_000, 3, 11);
    let params = DbscanParams::new(0.8, 5);

    println!("μDBSCAN-D scaling — n={}, dim=3 (virtual BSP makespans)\n", dataset.len());

    // Pull the distributed-only quantities out of a facade run.
    let dist_run = |p: usize| -> (Clustering, f64, u64) {
        let out = Runner::new(params).ranks(p).run(&dataset).unwrap();
        let RunDetails::Distributed { runtime_secs, comm_bytes, .. } = out.details else {
            unreachable!("a ranks(p) run is Distributed")
        };
        (out.clustering, runtime_secs, comm_bytes)
    };

    let (base, base_runtime, base_comm) = dist_run(1);
    println!(
        "{:>6} {:>12} {:>9} {:>10} {:>12}",
        "ranks", "runtime (s)", "speedup", "clusters", "comm (KiB)"
    );
    println!(
        "{:>6} {:>12.3} {:>9.2} {:>10} {:>12}",
        1,
        base_runtime,
        1.0,
        base.n_clusters,
        base_comm / 1024
    );

    for p in [2, 4, 8, 16, 32] {
        let (clustering, runtime_secs, comm_bytes) = dist_run(p);
        assert_eq!(
            clustering.n_clusters, base.n_clusters,
            "clustering must be identical at every rank count"
        );
        println!(
            "{:>6} {:>12.3} {:>9.2} {:>10} {:>12}",
            p,
            runtime_secs,
            base_runtime / runtime_secs,
            clustering.n_clusters,
            comm_bytes / 1024
        );
    }

    println!("\nexact clustering preserved at every scale ✓");
    println!("(speedups are virtual-clock makespans; see DESIGN.md §2 on the BSP model)");
}
