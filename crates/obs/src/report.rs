//! The aggregated output of a collection window.
//!
//! A [`Report`] is what [`crate::take_report`] returns: every span path
//! with its accumulated wall seconds, enter count and duration
//! histogram, plus the named counters, additive values and explicit
//! histograms. It converts losslessly to [`crate::Json`] for the
//! `BENCH_*.json` trajectory files.

use crate::hist::Histogram;
use crate::json::Json;

/// Accumulated statistics of one span path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanStat {
    /// Total wall-clock seconds across all entries of this path.
    pub secs: f64,
    /// Number of times the span was entered.
    pub count: u64,
    /// Per-entry durations (nanoseconds) in the fixed log-bucket layout,
    /// so span-latency percentiles merge exactly across threads.
    pub dur_ns: Histogram,
}

/// Everything collected between a [`crate::reset`] and a
/// [`crate::take_report`], sorted by name for deterministic output.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// `(slash-joined path, stats)` for every span, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// `(name, total)` for every monotone counter, sorted by name.
    pub counts: Vec<(String, u64)>,
    /// `(name, total)` for every additive value, sorted by name.
    pub values: Vec<(String, f64)>,
    /// `(name, histogram)` for every explicitly recorded histogram
    /// ([`crate::record_hist`]), sorted by name.
    pub hists: Vec<(String, Histogram)>,
}

impl Report {
    /// Total seconds recorded under `path` (0 when absent).
    pub fn span_secs(&self, path: &str) -> f64 {
        self.spans.iter().find(|(p, _)| p == path).map_or(0.0, |(_, s)| s.secs)
    }

    /// Number of times the span at `path` was entered (0 when absent).
    pub fn span_count(&self, path: &str) -> u64 {
        self.spans.iter().find(|(p, _)| p == path).map_or(0, |(_, s)| s.count)
    }

    /// Value of the named counter (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        self.counts.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Value of the named additive value (0.0 when absent).
    pub fn value(&self, name: &str) -> f64 {
        self.values.iter().find(|(n, _)| n == name).map_or(0.0, |(_, v)| *v)
    }

    /// The named histogram, when one was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The per-window delta `self − earlier`, where `earlier` is a
    /// previous snapshot of the same cumulative state (see
    /// [`crate::live`] for the polling machinery built on this).
    ///
    /// Keys are taken from `self`: cumulative state only ever grows, so
    /// a later snapshot's key set is a superset of an earlier one's.
    /// Counter deltas subtract **exactly** (`u64`), which is what makes
    /// "sum of all windows ≡ cumulative totals" a bit-identity; span
    /// counts and histogram deltas are exact the same way
    /// ([`Histogram::diff`]); float values and span seconds subtract as
    /// `f64` (additive, not bit-exact by nature).
    pub fn delta_since(&self, earlier: &Report) -> Report {
        let spans = self
            .spans
            .iter()
            .map(|(p, s)| {
                let e = earlier.spans.iter().find(|(q, _)| q == p).map(|(_, s)| s);
                let delta = SpanStat {
                    secs: s.secs - e.map_or(0.0, |e| e.secs),
                    count: s.count.saturating_sub(e.map_or(0, |e| e.count)),
                    dur_ns: match e {
                        Some(e) => s.dur_ns.diff(&e.dur_ns),
                        None => s.dur_ns.clone(),
                    },
                };
                (p.clone(), delta)
            })
            .collect();
        let counts = self
            .counts
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.count(n))))
            .collect();
        let values = self.values.iter().map(|(n, v)| (n.clone(), v - earlier.value(n))).collect();
        let hists = self
            .hists
            .iter()
            .map(|(n, h)| {
                let delta = match earlier.hist(n) {
                    Some(e) => h.diff(e),
                    None => h.clone(),
                };
                (n.clone(), delta)
            })
            .collect();
        Report { spans, counts, values, hists }
    }

    /// Fold another report into this one: counters and span counts add,
    /// values and span seconds add, histograms merge bucket-wise
    /// ([`Histogram::merge`]). Merging every window of a poll sequence
    /// reproduces the cumulative snapshot's counters and histograms
    /// bit-identically — the window algebra pinned by the `live` tests.
    pub fn merge(&mut self, other: &Report) {
        for (p, s) in &other.spans {
            match self.spans.iter_mut().find(|(q, _)| q == p) {
                Some((_, mine)) => {
                    mine.secs += s.secs;
                    mine.count += s.count;
                    mine.dur_ns.merge(&s.dur_ns);
                }
                None => self.spans.push((p.clone(), s.clone())),
            }
        }
        for (n, v) in &other.counts {
            match self.counts.iter_mut().find(|(m, _)| m == n) {
                Some((_, mine)) => *mine += v,
                None => self.counts.push((n.clone(), *v)),
            }
        }
        for (n, v) in &other.values {
            match self.values.iter_mut().find(|(m, _)| m == n) {
                Some((_, mine)) => *mine += v,
                None => self.values.push((n.clone(), *v)),
            }
        }
        for (n, h) in &other.hists {
            match self.hists.iter_mut().find(|(m, _)| m == n) {
                Some((_, mine)) => mine.merge(h),
                None => self.hists.push((n.clone(), h.clone())),
            }
        }
        self.spans.sort_by(|a, b| a.0.cmp(&b.0));
        self.counts.sort_by(|a, b| a.0.cmp(&b.0));
        self.values.sort_by(|a, b| a.0.cmp(&b.0));
        self.hists.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Convert to a JSON object:
    /// `{"spans": {path: {"secs": s, "count": c, "dur_ns": {...}}},
    /// "counts": {...}, "values": {...}, "hists": {name: {...}}}`.
    ///
    /// Span entries carry their duration-percentile summary only when
    /// samples were recorded (hand-built reports may have empty
    /// histograms). Explicit histograms are emitted in full (summary +
    /// sparse buckets).
    pub fn to_json(&self) -> Json {
        let spans = Json::obj_from(self.spans.iter().map(|(p, s)| {
            let mut js = Json::obj_from([
                ("secs".to_string(), Json::Num(s.secs)),
                ("count".to_string(), Json::Num(s.count as f64)),
            ]);
            if !s.dur_ns.is_empty() {
                js.set("dur_ns", s.dur_ns.summary_json());
            }
            (p.clone(), js)
        }));
        let counts =
            Json::obj_from(self.counts.iter().map(|(n, v)| (n.clone(), Json::Num(*v as f64))));
        let values = Json::obj_from(self.values.iter().map(|(n, v)| (n.clone(), Json::Num(*v))));
        let hists = Json::obj_from(self.hists.iter().map(|(n, h)| (n.clone(), h.to_json())));
        Json::obj_from([
            ("spans".to_string(), spans),
            ("counts".to_string(), counts),
            ("values".to_string(), values),
            ("hists".to_string(), hists),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut qh = Histogram::new();
        for v in [4u64, 4, 9, 120] {
            qh.record(v);
        }
        let mut dur = Histogram::new();
        dur.record(1_500_000);
        Report {
            spans: vec![
                ("a".into(), SpanStat { secs: 1.5, count: 1, dur_ns: dur }),
                ("a/b".into(), SpanStat { secs: 0.5, count: 3, dur_ns: Histogram::new() }),
            ],
            counts: vec![("mc_dense".into(), 42)],
            values: vec![("virtual".into(), 2.25)],
            hists: vec![("query/node_visits".into(), qh)],
        }
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.span_secs("a"), 1.5);
        assert_eq!(r.span_count("a/b"), 3);
        assert_eq!(r.count("mc_dense"), 42);
        assert_eq!(r.value("virtual"), 2.25);
        assert_eq!(r.span_secs("missing"), 0.0);
        assert_eq!(r.hist("query/node_visits").unwrap().count(), 4);
        assert!(r.hist("missing").is_none());
    }

    #[test]
    fn delta_since_and_merge_obey_the_window_algebra() {
        let mut h1 = Histogram::new();
        h1.record(10);
        let r1 = Report {
            spans: vec![("a".into(), SpanStat { secs: 1.0, count: 1, dur_ns: Histogram::new() })],
            counts: vec![("c".into(), 5)],
            values: vec![("v".into(), 0.5)],
            hists: vec![("h".into(), h1.clone())],
        };
        let mut h2 = h1.clone();
        h2.record(10_000);
        let r2 = Report {
            spans: vec![("a".into(), SpanStat { secs: 2.5, count: 3, dur_ns: Histogram::new() })],
            counts: vec![("c".into(), 9), ("d".into(), 2)],
            values: vec![("v".into(), 0.75)],
            hists: vec![("h".into(), h2.clone())],
        };
        // Two windows: nothing → r1, r1 → r2.
        let w1 = r1.delta_since(&Report::default());
        let w2 = r2.delta_since(&r1);
        assert_eq!(w2.count("c"), 4);
        assert_eq!(w2.count("d"), 2, "keys born inside a window delta in full");
        assert_eq!(w2.span_count("a"), 2);
        assert_eq!(w2.hist("h").unwrap().count(), 1);
        assert_eq!(w2.hist("h").unwrap().max(), 10_000, "window containing the max is exact");
        // Merging the windows reproduces the cumulative state: counters
        // and histograms bit-identically, floats additively.
        let mut merged = w1;
        merged.merge(&w2);
        assert_eq!(merged.counts, r2.counts);
        assert_eq!(merged.hists, r2.hists);
        assert_eq!(merged.span_count("a"), 3);
        assert!((merged.value("v") - 0.75).abs() < 1e-12);
        assert!((merged.span_secs("a") - 2.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let js = sample().to_json();
        let text = js.render_pretty();
        let back = Json::parse(&text).unwrap();
        let ab = back.get("spans").and_then(|s| s.get("a/b")).unwrap();
        assert_eq!(ab.get("count").and_then(Json::as_f64), Some(3.0));
        assert!(ab.get("dur_ns").is_none(), "empty duration histograms are omitted");
        let a = back.get("spans").and_then(|s| s.get("a")).unwrap();
        assert_eq!(a.get("dur_ns").and_then(|d| d.get("count")).and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            back.get("counts").and_then(|c| c.get("mc_dense")).and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            back.get("values").and_then(|v| v.get("virtual")).and_then(Json::as_f64),
            Some(2.25)
        );
        let qh = back.get("hists").and_then(|h| h.get("query/node_visits")).unwrap();
        assert_eq!(qh.get("count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(qh.get("p50").and_then(Json::as_f64), Some(4.0));
        assert!(qh.get("buckets").and_then(Json::as_array).is_some());
    }
}
