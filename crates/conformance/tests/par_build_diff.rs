//! Differential suite for the tiled parallel micro-cluster builder
//! (`mcs::build_micro_clusters_par`), over the same randomized dataset
//! families the main conformance sweep uses. Three properties per case:
//!
//! 1. **partition invariants** — exclusive membership, every member
//!    strictly within ε of its center, centers pairwise ≥ ε apart,
//!    `center == members[0]`, no point unassigned;
//! 2. **thread-count determinism** — the MC set (centers + member lists)
//!    and the construction counters are bit-identical for threads ∈
//!    {1, 2, 4, 8};
//! 3. **downstream exactness** — `ParMuDbscan` running on top of the
//!    parallel build still matches the O(n²) `naive_dbscan` oracle.
//!
//! Plus two non-proptest anchors: a counter-consistency test pinning the
//! acceptance criterion that sequential and parallel t1 runs (sequential
//! build path) report identical `node_visits`/`range_queries` after the
//! accounting fixes, and a `PROPTEST_CASES`-scaled stress loop for the
//! tile-boundary reconciliation pass.

use conformance::{DatasetSpec, Family, FAMILIES};
use geom::{dist_euclidean, Dataset, DbscanParams};
use mcs::{build_micro_clusters_par, BuildOptions, McId, MuRTree};
use metrics::Counters;
use mudbscan::{check_exact, naive_dbscan, MuDbscan, ParMuDbscan};
use proptest::prelude::*;

/// Assert the μR-tree is a valid MC partition of `data` for `eps`.
fn assert_partition(label: &str, data: &Dataset, t: &MuRTree, eps: f64) {
    let mut seen = vec![false; data.len()];
    for (id, mc) in t.mcs.iter().enumerate() {
        assert_eq!(mc.center, mc.members[0], "{label}: center must be first member");
        for &m in &mc.members {
            assert!(!seen[m as usize], "{label}: point {m} in two MCs");
            seen[m as usize] = true;
            assert_eq!(t.assignment[m as usize], id as McId, "{label}: assignment mismatch");
            assert!(
                dist_euclidean(data.point(m), data.point(mc.center)) < eps,
                "{label}: member outside its MC ball"
            );
        }
    }
    assert!(seen.iter().all(|&s| s), "{label}: unassigned point");
    for (i, a) in t.mcs.iter().enumerate() {
        for b in t.mcs.iter().skip(i + 1) {
            assert!(
                dist_euclidean(data.point(a.center), data.point(b.center)) >= eps,
                "{label}: two MC centers within eps"
            );
        }
    }
}

/// (center, members) per MC — the canonical identity of a build result.
type Fingerprint = Vec<(u32, Vec<u32>)>;

fn fingerprint(t: &MuRTree) -> Fingerprint {
    t.mcs.iter().map(|mc| (mc.center, mc.members.clone())).collect()
}

fn check_case(
    test: &str,
    family: Family,
    n: usize,
    dim: usize,
    seed: u64,
    eps: f64,
    min_pts: usize,
) -> Result<(), TestCaseError> {
    let spec = DatasetSpec { family, n, dim, seed };
    let data = Dataset::from_rows(&spec.rows());
    let params = DbscanParams::new(eps, min_pts);

    let mut baseline: Option<(Fingerprint, (u64, u64, u64))> = None;
    for threads in [1usize, 2, 4, 8] {
        let c = Counters::new();
        let (t, _) = build_micro_clusters_par(&data, eps, &BuildOptions::default(), threads, &c);
        assert_partition(&format!("{test}/t{threads}"), &data, &t, eps);
        let fp = fingerprint(&t);
        let cc = (c.node_visits(), c.dist_computations(), c.range_queries());
        match &baseline {
            None => baseline = Some((fp, cc)),
            Some((bfp, bcc)) => {
                prop_assert_eq!(&fp, bfp, "{}: MC set drifted at t{}", test, threads);
                prop_assert_eq!(&cc, bcc, "{}: counters drifted at t{}", test, threads);
            }
        }
    }

    // Downstream exactness on top of the parallel build.
    let reference = naive_dbscan(&data, &params);
    let out = ParMuDbscan::from_params(params, 2).run(&data);
    let rep = check_exact(&out.clustering, &reference, &data, &params);
    prop_assert!(rep.is_exact(), "{}: parallel-build clustering inexact: {:?}", test, rep);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn blobs_par_build(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                       eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("blobs_par_build", Family::Blobs, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn uniform_par_build(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                         eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("uniform_par_build", Family::Uniform, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn chains_par_build(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                        eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("chains_par_build", Family::Chains, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn duplicates_par_build(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                            eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("duplicates_par_build", Family::Duplicates, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }

    #[test]
    fn mixed_par_build(seed in 0u64..u64::MAX / 2, n in 4usize..64, dim in 1usize..9,
                       eps_steps in 1usize..12, min_pts in 1usize..8) {
        check_case("mixed_par_build", Family::Mixed, n, dim, seed,
                   eps_steps as f64 * 0.15, min_pts)?;
    }
}

/// Acceptance criterion: after the query-accounting fixes, a sequential
/// `MuDbscan` run and a `ParMuDbscan` t1 run over the *same construction
/// path* (sequential build pinned) execute the identical counting
/// sequence — `node_visits` and `range_queries` must agree exactly, on a
/// fixed seed, across every family.
#[test]
fn seq_and_par_t1_counters_agree() {
    for family in FAMILIES {
        let spec = DatasetSpec { family, n: 300, dim: 3, seed: 2019 };
        let data = Dataset::from_rows(&spec.rows());
        let params = DbscanParams::new(0.6, 5);

        let seq = MuDbscan::from_params(params).run(&data);
        let par =
            ParMuDbscan::from_params(params, 1).with_options(BuildOptions::default()).run(&data);
        let par_counters = par.counters.snapshot();

        let label = family.as_str();
        assert_eq!(
            seq.counters.node_visits(),
            par_counters.node_visits(),
            "{label}: node_visits drifted between seq and par t1"
        );
        assert_eq!(
            seq.counters.range_queries(),
            par_counters.range_queries(),
            "{label}: range_queries drifted between seq and par t1"
        );
        assert_eq!(
            seq.counters.queries_saved(),
            par_counters.queries_saved(),
            "{label}: queries_saved drifted between seq and par t1"
        );
        // The best-first + batched-leaf query path must charge the exact
        // same distance-test totals as well: the visited node set (and so
        // every per-entry evaluation) is pruning-determined, not
        // traversal-order-determined.
        assert_eq!(
            seq.counters.dist_computations(),
            par_counters.dist_computations(),
            "{label}: dist_computations drifted between seq and par t1"
        );
        assert_eq!(
            seq.counters.union_ops(),
            par_counters.union_ops(),
            "{label}: union_ops drifted between seq and par t1"
        );
    }
}

/// Repeated-stress variant of the tile-boundary reconciliation test: a
/// near-ε-spaced line crosses every tile boundary (maximising candidate
/// conflicts), jittered per repetition. Scaled by `PROPTEST_CASES` so the
/// CI stress job can turn it up without a code change.
#[test]
fn tile_boundary_reconciliation_stress() {
    let reps: usize =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let eps = 1.0;
    for rep in 0..reps.max(1) {
        // Deterministic per-rep jitter (no RNG: keep replays trivial).
        let jitter = (rep as f64 * 0.017) % 0.09;
        let rows: Vec<Vec<f64>> =
            (0..300).map(|i| vec![i as f64 * (0.11 + jitter), (i % 7) as f64 * 0.05]).collect();
        let data = Dataset::from_rows(&rows);

        let mut baseline: Option<Fingerprint> = None;
        for threads in [1usize, 2, 4, 8] {
            let c = Counters::new();
            let (t, stats) =
                build_micro_clusters_par(&data, eps, &BuildOptions::default(), threads, &c);
            assert_partition(&format!("stress rep {rep} t{threads}"), &data, &t, eps);
            assert!(stats.tiles > 5, "rep {rep}: the line must cross many tiles");
            match &baseline {
                None => baseline = Some(fingerprint(&t)),
                Some(b) => assert_eq!(
                    &fingerprint(&t),
                    b,
                    "rep {rep} t{threads}: reconciliation outcome drifted"
                ),
            }
        }
    }
}
