//! Parameter selection: the k-dist heuristic of the original DBSCAN
//! paper (Ester et al. 1996, §4.2).
//!
//! Plot the distance of every point to its k-th nearest neighbour in
//! descending order; the "valley"/knee of that curve is a good ε, and
//! `MinPts = k`. [`k_dist_curve`] computes the curve with an R-tree,
//! [`suggest_eps`] picks the knee with the maximum-curvature rule.

use geom::{Dataset, PointId};
use rtree::{RTree, RTreeConfig};

/// The descending k-dist curve: for each point, the distance to its
/// `k`-th nearest neighbour (self excluded), sorted descending.
///
/// For large datasets pass `sample_every > 1` to subsample the query
/// points (the curve's shape is what matters, not its length).
pub fn k_dist_curve(data: &Dataset, k: usize, sample_every: usize) -> Vec<f64> {
    assert!(k >= 1 && sample_every >= 1);
    let tree = RTree::bulk_load_points(
        data.dim(),
        RTreeConfig::default(),
        data.iter().map(|(i, p)| (i, p.to_vec())),
    );
    let mut curve: Vec<f64> = (0..data.len())
        .step_by(sample_every)
        .filter_map(|p| {
            // k+1 because the nearest neighbour of a stored point is
            // itself at distance 0.
            tree.kth_neighbor_dist(data.point(p as PointId), k + 1)
        })
        .collect();
    curve.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    curve
}

/// Suggest ε for a given `min_pts` by locating the knee of the k-dist
/// curve (point of maximum distance to the chord between the curve's
/// endpoints — the standard "elbow" rule).
///
/// Returns `None` for degenerate inputs (fewer than 3 curve points or a
/// flat curve).
pub fn suggest_eps(data: &Dataset, min_pts: usize, sample_every: usize) -> Option<f64> {
    let curve = k_dist_curve(data, min_pts.max(1), sample_every);
    knee_of(&curve)
}

/// Maximum-distance-to-chord knee detection on a descending curve.
pub(crate) fn knee_of(curve: &[f64]) -> Option<f64> {
    if curve.len() < 3 {
        return None;
    }
    let n = curve.len() as f64;
    let (y0, y1) = (curve[0], curve[curve.len() - 1]);
    if (y0 - y1).abs() < 1e-300 {
        return None;
    }
    // Chord from (0, y0) to (n-1, y1); distance of each point to it.
    let dx = n - 1.0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    let mut best = (0.0f64, 0usize);
    for (i, &y) in curve.iter().enumerate() {
        let d = (dy * i as f64 - dx * (y - y0)).abs() / norm;
        if d > best.0 {
            best = (d, i);
        }
    }
    Some(curve[best.1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_dbscan, MuDbscan};
    use geom::DbscanParams;

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut s = 77u64;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 9.0)] {
            for _ in 0..60 {
                rows.push(vec![cx + 0.5 * r(), cy + 0.5 * r()]);
            }
        }
        for _ in 0..12 {
            rows.push(vec![20.0 * r(), 20.0 * r()]);
        }
        Dataset::from_rows(&rows)
    }

    #[test]
    fn curve_is_descending_and_sized() {
        let data = blobs();
        let c = k_dist_curve(&data, 4, 1);
        assert_eq!(c.len(), data.len());
        assert!(c.windows(2).all(|w| w[0] >= w[1]));
        let sampled = k_dist_curve(&data, 4, 3);
        assert!(sampled.len() < c.len());
    }

    #[test]
    fn suggested_eps_recovers_the_blobs() {
        let data = blobs();
        let min_pts = 4;
        let eps = suggest_eps(&data, min_pts, 1).expect("knee must exist");
        assert!(eps > 0.0);
        let params = DbscanParams::new(eps, min_pts);
        let c = MuDbscan::from_params(params).run(&data).clustering;
        // The heuristic must find the three planted blobs (possibly
        // fragmenting slightly, but not collapsing everything).
        assert!((2..=6).contains(&c.n_clusters), "eps={eps:.3} found {} clusters", c.n_clusters);
        assert_eq!(c, naive_dbscan(&data, &params));
    }

    #[test]
    fn knee_edge_cases() {
        assert_eq!(knee_of(&[]), None);
        assert_eq!(knee_of(&[1.0, 0.5]), None);
        assert_eq!(knee_of(&[2.0, 2.0, 2.0]), None);
        // A sharp elbow at index 2.
        let v = [10.0, 9.5, 9.0, 1.0, 0.9, 0.8, 0.7];
        let k = knee_of(&v).unwrap();
        assert!((0.9..=9.0).contains(&k), "{k}");
    }
}
