//! Ablation: union–find path-compaction variants (DESIGN.md §7.5) and
//! the lock-free concurrent structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unionfind::sequential::Compaction;
use unionfind::{ConcurrentUnionFind, UnionFind};

fn edges(n: usize, m: usize) -> Vec<(u32, u32)> {
    (0..m as u64)
        .map(|i| {
            let a = (i.wrapping_mul(2654435761) % n as u64) as u32;
            let b = (i.wrapping_mul(40503).wrapping_add(7) % n as u64) as u32;
            (a, b)
        })
        .collect()
}

fn bench_unionfind(c: &mut Criterion) {
    let n = 100_000;
    let es = edges(n, 400_000);

    let mut g = c.benchmark_group("unionfind");
    for (name, comp) in
        [("halving", Compaction::Halving), ("full", Compaction::Full), ("none", Compaction::None)]
    {
        g.bench_function(BenchmarkId::new("sequential", name), |b| {
            b.iter(|| {
                let mut uf = UnionFind::with_compaction(n, comp);
                for &(x, y) in &es {
                    uf.union(x, y);
                }
                black_box(uf.find(0))
            })
        });
    }
    g.bench_function("concurrent_single_thread", |b| {
        b.iter(|| {
            let uf = ConcurrentUnionFind::new(n);
            for &(x, y) in &es {
                uf.union(x, y);
            }
            black_box(uf.find(0))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_unionfind
}
criterion_main!(benches);
