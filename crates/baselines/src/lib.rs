#![warn(missing_docs)]

//! Baseline DBSCAN algorithms re-implemented from their papers, used in
//! the reproduction of Tables II, IV and V:
//!
//! * [`RDbscan`] — classical DBSCAN over a single R-tree index (the
//!   paper's "R-DBSCAN" column), with disjoint-set cluster formation.
//! * [`GDbscan`] — the groups method of Kumar & Reddy (Pattern
//!   Recognition 2016): ε/2-radius groups built by linear scan (no spatial
//!   index), group-pruned neighbour queries, full groups are all-core.
//! * [`GridDbscan`] — grid-based exact DBSCAN (Kumari et al., ICDCN'17):
//!   cells of side ε/√d, per-cell neighbour-cell lists, dense cells are
//!   all-core. Its neighbour-cell structure grows exponentially with
//!   dimension, which reproduces the paper's high-d memory errors — the
//!   run returns `Err(MemoryLimitExceeded)` instead of thrashing.
//!
//! All baselines produce a [`mudbscan::Clustering`] and are validated for
//! exactness against [`mudbscan::naive_dbscan`] (except where a paper
//! baseline is approximate by design; those live in the `dist` crate).

//! ```
//! use baselines::{GDbscan, GridDbscan, RDbscan};
//! use geom::{Dataset, DbscanParams};
//!
//! let data = Dataset::from_rows(&[
//!     vec![0.0, 0.0], vec![0.2, 0.0], vec![0.0, 0.2], vec![8.0, 8.0],
//! ]);
//! let params = DbscanParams::new(0.5, 3);
//! let r = RDbscan::new(params).run(&data).clustering;
//! let g = GDbscan::new(params).run(&data).clustering;
//! let grid = GridDbscan::new(params).run(&data).unwrap().clustering;
//! assert_eq!(r.n_clusters, 1);
//! assert_eq!(r, g);
//! assert_eq!(g, grid);
//! ```

pub mod gdbscan;
pub mod grid;
pub mod rdbscan;

pub use gdbscan::GDbscan;
pub use grid::{GridDbscan, GridError};
pub use rdbscan::RDbscan;

use metrics::{Counters, PhaseTimer};
use mudbscan::Clustering;

/// Common output shape for the sequential baselines.
#[derive(Debug)]
pub struct BaselineOutput {
    /// The produced clustering.
    pub clustering: Clustering,
    /// Operation counters.
    pub counters: Counters,
    /// Wall-clock phase split-up.
    pub phases: PhaseTimer,
    /// Estimated peak heap bytes of the algorithm's structures.
    pub peak_heap_bytes: usize,
}
