//! The BSP engine: superstep execution, message routing, virtual clocks,
//! and deterministic fault injection (see [`crate::fault`]).

use crate::fault::{splitmix64, FaultPlan, FaultStats, RetryConfig};
use crate::msgsize::MsgSize;
use metrics::{PhaseTimer, Stopwatch};

/// α–β communication cost model: every superstep with communication costs
/// `latency + h / bandwidth` virtual seconds, where `h` is the maximum
/// number of bytes any single rank sends or receives (the BSP `L + g·h`
/// term).
#[derive(Debug, Clone, Copy)]
pub struct CommModel {
    /// Per-superstep synchronisation/latency cost in seconds (MPI
    /// collective launch, ~tens of µs on a commodity cluster).
    pub latency_s: f64,
    /// Link bandwidth in bytes/second (10 GbE default).
    pub bandwidth_bytes_per_s: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        Self { latency_s: 25e-6, bandwidth_bytes_per_s: 1.25e9 }
    }
}

/// How rank closures are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Run ranks one after another on the calling thread, timing each —
    /// exact virtual clocks on any host. Default.
    #[default]
    Sequential,
    /// Run every rank on its own OS thread per superstep — demonstrates
    /// real data-parallelism; virtual clocks then reflect wall time under
    /// whatever core count the host has.
    Threaded,
}

/// An outgoing message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Destination rank.
    pub to: usize,
    /// Payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Address `msg` to rank `to`.
    pub fn new(to: usize, msg: M) -> Self {
        Self { to, msg }
    }
}

/// Per-rank virtual-clock totals, accumulated across supersteps. The
/// BSP barrier model charges every rank the same communication time per
/// superstep, but compute time is each rank's own — the spread across
/// ranks IS the load imbalance the paper's kd-tree partitioning argues
/// about, and what the per-rank BSP timeline in the bench schema (v3)
/// summarises.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankClock {
    /// Virtual seconds this rank spent computing.
    pub compute_secs: f64,
    /// Virtual seconds this rank spent in communication/barrier.
    pub comm_secs: f64,
    /// Bytes this rank sent.
    pub bytes_sent: u64,
    /// Bytes this rank received.
    pub bytes_received: u64,
}

/// The engine: `p` rank states, virtual clocks, makespan accounting.
pub struct Bsp<S> {
    states: Vec<S>,
    mode: ExecMode,
    comm: CommModel,
    /// Virtual makespan accumulated so far (seconds).
    makespan: f64,
    /// Makespan split by phase label.
    phase_times: PhaseTimer,
    current_phase: String,
    /// Total bytes routed between ranks.
    comm_bytes: u64,
    /// Number of supersteps executed.
    steps: usize,
    /// Per-rank virtual-clock totals.
    rank_clocks: Vec<RankClock>,
    /// Injected fault schedule (empty by default).
    plan: FaultPlan,
    /// Reliable-delivery policy for injected message faults.
    retry: RetryConfig,
    /// Ranks currently crashed (fail-stop, awaiting [`Bsp::recover`]).
    down: Vec<bool>,
    /// Fault/recovery counters accumulated so far.
    stats: FaultStats,
}

impl<S: Send> Bsp<S> {
    /// Engine over the given per-rank states.
    pub fn new(states: Vec<S>) -> Self {
        assert!(!states.is_empty(), "need at least one rank");
        let p = states.len();
        Self {
            states,
            mode: ExecMode::Sequential,
            comm: CommModel::default(),
            makespan: 0.0,
            phase_times: PhaseTimer::new(),
            current_phase: "unphased".to_string(),
            comm_bytes: 0,
            steps: 0,
            rank_clocks: vec![RankClock::default(); p],
            plan: FaultPlan::default(),
            retry: RetryConfig::default(),
            down: vec![false; p],
            stats: FaultStats::default(),
        }
    }

    /// Select the execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Override the communication cost model.
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Inject the given fault schedule. Faults are addressed by the
    /// engine's superstep counter ([`Bsp::steps`]); crashes fire on
    /// compute supersteps ([`Bsp::run`]), message faults on communicating
    /// ones ([`Bsp::exchange`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Override the reliable-delivery retry policy.
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Number of ranks (`p`).
    pub fn size(&self) -> usize {
        self.states.len()
    }

    /// Label subsequent supersteps with `name` (for per-phase makespans).
    pub fn phase(&mut self, name: &str) {
        self.current_phase = name.to_string();
    }

    /// Virtual makespan in seconds.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Per-phase makespan split-up.
    pub fn phase_times(&self) -> &PhaseTimer {
        &self.phase_times
    }

    /// Total bytes communicated.
    pub fn comm_bytes(&self) -> u64 {
        self.comm_bytes
    }

    /// Supersteps executed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Per-rank virtual-clock totals (compute/comm seconds, bytes
    /// sent/received), indexed by rank.
    pub fn rank_clocks(&self) -> &[RankClock] {
        &self.rank_clocks
    }

    /// Fault/recovery counters accumulated so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Ranks currently down (crashed and not yet recovered), ascending.
    pub fn crashed_ranks(&self) -> Vec<usize> {
        self.down.iter().enumerate().filter(|(_, &d)| d).map(|(r, _)| r).collect()
    }

    /// Whether `rank` is currently down.
    pub fn is_down(&self, rank: usize) -> bool {
        self.down[rank]
    }

    /// Immutable view of the rank states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable view of the rank states (orchestrator-side setup only; not
    /// charged to any rank's clock).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Consume the engine, returning the rank states.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    fn charge(&mut self, secs: f64) {
        self.makespan += secs;
        let phase = self.current_phase.clone();
        self.phase_times.add_secs(&phase, secs);
    }

    /// Charge a superstep split into its compute and communication shares,
    /// exporting the split to `obs` when collection is on (the makespan and
    /// phase accounting are identical to a single [`Bsp::charge`]).
    fn charge_split(&mut self, compute_secs: f64, comm_secs: f64, comm_bytes: u64) {
        self.charge(compute_secs + comm_secs);
        if obs::enabled() {
            obs::record_value(
                &format!("bsp/{}/compute_virtual_secs", self.current_phase),
                compute_secs,
            );
            if comm_secs > 0.0 || comm_bytes > 0 {
                obs::record_value(
                    &format!("bsp/{}/comm_virtual_secs", self.current_phase),
                    comm_secs,
                );
                obs::record_count(&format!("bsp/{}/comm_bytes", self.current_phase), comm_bytes);
                // Per-superstep comm volume distribution (merging across
                // ranks/steps is exact: fixed bucket layout).
                obs::record_hist("bsp/comm_bytes_per_superstep", comm_bytes);
            }
        }
    }

    /// Emit one virtual-clock trace slice per rank starting at virtual
    /// time `start` (seconds). No-op unless tracing is on.
    fn trace_rank_slices(&self, start: f64, per_rank: &[f64], cat: &str) {
        if !obs::enabled() || !obs::tracing_enabled() {
            return;
        }
        for (r, &secs) in per_rank.iter().enumerate() {
            obs::trace::virtual_slice(r as u32, &self.current_phase, cat, start, secs);
        }
    }

    /// Time `f(r, &mut states[r])` for every rank, honouring the
    /// execution mode, and return the per-rank wall seconds plus the
    /// value the makespan should advance by (per-rank max in Sequential
    /// mode, the scope wall — including spawn overhead — in Threaded
    /// mode, exactly as before per-rank clocks existed).
    fn timed_ranks<T: Send>(
        mode: ExecMode,
        states: &mut [S],
        f: impl Fn(usize, &mut S) -> T + Sync,
    ) -> (Vec<T>, Vec<f64>, f64) {
        match mode {
            ExecMode::Sequential => {
                let mut out = Vec::with_capacity(states.len());
                let mut secs = Vec::with_capacity(states.len());
                for (r, s) in states.iter_mut().enumerate() {
                    let sw = Stopwatch::start();
                    out.push(f(r, s));
                    secs.push(sw.secs());
                }
                let max = secs.iter().cloned().fold(0.0f64, f64::max);
                (out, secs, max)
            }
            ExecMode::Threaded => {
                let sw = Stopwatch::start();
                let mut out = Vec::with_capacity(states.len());
                let mut secs = Vec::with_capacity(states.len());
                std::thread::scope(|scope| {
                    let handles: Vec<_> = states
                        .iter_mut()
                        .enumerate()
                        .map(|(r, s)| {
                            let f = &f;
                            scope.spawn(move || {
                                let sw = Stopwatch::start();
                                let v = f(r, s);
                                (v, sw.secs())
                            })
                        })
                        .collect();
                    for h in handles {
                        let (v, t) = h.join().expect("rank thread panicked");
                        out.push(v);
                        secs.push(t);
                    }
                });
                (out, secs, sw.secs())
            }
        }
    }

    /// Panic unless every rank is alive: the orchestrator must
    /// [`Bsp::recover`] crashed ranks before the next superstep (a dead
    /// rank cannot reach a BSP barrier).
    fn assert_all_alive(&self, what: &str) {
        if let Some(r) = self.down.iter().position(|&d| d) {
            panic!("rank {r} is down entering {what}: recover() crashed ranks before the next superstep");
        }
    }

    /// Zero crashed ranks' compute time, scale stragglers', and return
    /// the makespan advance (per-rank max in Sequential mode; at least
    /// the scope wall in Threaded mode).
    fn finish_compute_times(
        &mut self,
        secs: &mut [f64],
        base_advance: f64,
        crashed: &[bool],
        count_straggle: bool,
    ) -> f64 {
        let mut scaled_any = false;
        for (r, s) in secs.iter_mut().enumerate() {
            if crashed[r] {
                *s = 0.0;
                continue;
            }
            let k = self.plan.straggler_factor(r);
            if k > 1.0 {
                *s *= k;
                scaled_any = true;
                if count_straggle {
                    self.stats.straggled_steps += 1;
                }
            }
        }
        if crashed.iter().all(|&c| !c) && !scaled_any {
            return base_advance;
        }
        let max = secs.iter().cloned().fold(0.0f64, f64::max);
        match self.mode {
            ExecMode::Sequential => max,
            ExecMode::Threaded => base_advance.max(max),
        }
    }

    /// A compute-only superstep: run `f` on every rank; the makespan
    /// advances by the slowest rank. Crash faults scheduled for this
    /// superstep fire here (fail-stop: the rank does no work and is
    /// marked down until [`Bsp::recover`]).
    pub fn run(&mut self, f: impl Fn(usize, &mut S) + Sync) {
        self.assert_all_alive("run");
        let step = self.steps;
        let p = self.size();
        let crashed: Vec<bool> = (0..p).map(|r| self.plan.crash_step(r) == Some(step)).collect();
        let crashed_ref = &crashed;
        let (_, mut secs, base) = Self::timed_ranks(self.mode, &mut self.states, |r, s| {
            if !crashed_ref[r] {
                f(r, s)
            }
        });
        let advance = self.finish_compute_times(&mut secs, base, &crashed, true);
        for (r, &c) in crashed.iter().enumerate() {
            if c {
                self.down[r] = true;
                self.stats.crashes += 1;
                if obs::enabled() {
                    obs::record_count("fault/crashes", 1);
                }
            }
        }
        self.trace_rank_slices(self.makespan, &secs, "compute");
        for (clock, s) in self.rank_clocks.iter_mut().zip(&secs) {
            clock.compute_secs += s;
        }
        self.steps += 1;
        self.charge_split(advance, 0.0, 0);
    }

    /// Re-execute a crashed rank's lost work and mark it alive again.
    ///
    /// The virtual clock charges the failure-detection timeout (the
    /// reliable layer's RTO) plus the re-executed compute; the superstep
    /// counter does NOT advance, so fault addressing is unaffected by
    /// recovery. Call [`Bsp::charge_recovery_comm`] first for any state
    /// the replacement rank must re-fetch (halos, checkpoints).
    pub fn recover(&mut self, rank: usize, f: impl FnOnce(usize, &mut S)) {
        assert!(self.down[rank], "recover() called on live rank {rank}");
        let sw = Stopwatch::start();
        f(rank, &mut self.states[rank]);
        let secs = sw.secs();
        let detect = self.retry.timeout_s;
        self.down[rank] = false;
        self.stats.recoveries += 1;
        self.stats.recovery_compute_secs += secs;
        self.stats.recovery_comm_secs += detect;
        self.rank_clocks[rank].compute_secs += secs;
        self.rank_clocks[rank].comm_secs += detect;
        let mut slices = vec![0.0; self.size()];
        slices[rank] = secs;
        self.trace_rank_slices(self.makespan + detect, &slices, "compute");
        self.charge_split(secs, detect, 0);
        if obs::enabled() {
            obs::record_count("fault/recoveries", 1);
            obs::record_hist("recovery/compute_us", (secs * 1e6) as u64);
        }
    }

    /// Charge communication a recovering rank performs outside a
    /// superstep (re-requesting its ε-halo, fetching a checkpoint).
    /// Idempotent re-requests are charged like any α–β transfer.
    pub fn charge_recovery_comm(&mut self, rank: usize, bytes: u64) {
        let secs = self.comm.latency_s + bytes as f64 / self.comm.bandwidth_bytes_per_s;
        self.comm_bytes += bytes;
        self.rank_clocks[rank].comm_secs += secs;
        self.rank_clocks[rank].bytes_received += bytes;
        self.stats.recovery_comm_bytes += bytes;
        self.stats.recovery_comm_secs += secs;
        self.charge_split(0.0, secs, bytes);
        if obs::enabled() {
            obs::record_hist("recovery/rerequest_bytes", bytes);
        }
    }

    /// A communicating superstep: every rank produces envelopes, the
    /// engine routes them, then every rank consumes its inbox (messages
    /// arrive as `(source, payload)` sorted by source, in per-sender
    /// send order).
    ///
    /// With a fault plan installed, the router injects drops (retried
    /// with backoff, the delay charged to the barrier), duplications
    /// (discarded by the delivery layer) and reorders (restored by the
    /// delivery layer's `(source, sequence)` sort) — so as long as drops
    /// stay within the retry budget, consumers observe the exact
    /// fault-free inbox and only the virtual clock differs.
    pub fn exchange<M: Send + Clone + MsgSize>(
        &mut self,
        produce: impl Fn(usize, &mut S) -> Vec<Envelope<M>> + Sync,
        consume: impl Fn(usize, &mut S, Vec<(usize, M)>) + Sync,
    ) {
        self.assert_all_alive("exchange");
        let p = self.size();
        let step = self.steps;
        let faults_on = !self.plan.is_empty();
        let stats_before = self.stats.clone();

        // Produce sub-phase.
        let (outboxes, mut produce_secs, produce_base) =
            Self::timed_ranks(self.mode, &mut self.states, &produce);
        let produce_max =
            self.finish_compute_times(&mut produce_secs, produce_base, &vec![false; p], true);
        self.trace_rank_slices(self.makespan, &produce_secs, "compute");

        // Route: h-relation cost = max over ranks of bytes in/out.
        // Retransmissions occupy the wire like first sends; the backoff
        // delay of the longest retry chain extends the barrier interval.
        let mut bytes_out = vec![0usize; p];
        let mut bytes_in = vec![0usize; p];
        let mut inboxes: Vec<Vec<(usize, u32, M)>> = (0..p).map(|_| Vec::new()).collect();
        let mut total = 0usize;
        let mut max_retry_delay = 0.0f64;
        for (src, outbox) in outboxes.into_iter().enumerate() {
            for (seq, env) in outbox.into_iter().enumerate() {
                assert!(env.to < p, "rank {src} sent to invalid rank {}", env.to);
                let b = env.msg.byte_size();
                let drops = if faults_on { self.plan.drop_attempts(step, src, env.to) } else { 0 };
                let failures = drops.min(self.retry.max_retries + 1);
                let delivered = drops <= self.retry.max_retries;
                let transmissions = failures as usize + usize::from(delivered);
                if failures > 0 {
                    self.stats.drops_injected += failures as u64;
                    self.stats.retries += transmissions as u64 - 1;
                    let mut delay = 0.0;
                    let mut rto = self.retry.timeout_s;
                    for _ in 0..failures {
                        delay += rto;
                        rto *= self.retry.backoff;
                    }
                    max_retry_delay = max_retry_delay.max(delay);
                    if obs::enabled() {
                        obs::record_hist("fault/retry_delay_us", (delay * 1e6) as u64);
                    }
                }
                bytes_out[src] += b * transmissions;
                total += b * transmissions;
                if delivered {
                    bytes_in[env.to] += b;
                    if faults_on && self.plan.duplicates(step, src, env.to) {
                        self.stats.duplicates_injected += 1;
                        bytes_out[src] += b;
                        bytes_in[env.to] += b;
                        total += b;
                        inboxes[env.to].push((src, seq as u32, env.msg.clone()));
                    }
                    inboxes[env.to].push((src, seq as u32, env.msg));
                } else {
                    self.stats.messages_lost += 1;
                }
            }
        }
        for (to, inbox) in inboxes.iter_mut().enumerate() {
            if faults_on && self.plan.reorders(step, to) && inbox.len() > 1 {
                // Deterministic Fisher–Yates keyed by (plan seed, step,
                // destination): replays shuffle identically.
                self.stats.reorders_injected += 1;
                let mut st = self.plan.seed ^ ((step as u64) << 32) ^ to as u64;
                for i in (1..inbox.len()).rev() {
                    let j = (splitmix64(&mut st) % (i as u64 + 1)) as usize;
                    inbox.swap(i, j);
                }
            }
            // Reliable delivery: exactly-once, in-order. The (source,
            // sequence) sort restores per-sender send order (identical to
            // the fault-free stable source sort) and the dedup discards
            // duplicated deliveries.
            inbox.sort_by_key(|&(src, seq, _)| (src, seq));
            let before = inbox.len();
            inbox.dedup_by_key(|&mut (src, seq, _)| (src, seq));
            self.stats.duplicates_discarded += (before - inbox.len()) as u64;
        }
        let inboxes: Vec<Vec<(usize, M)>> = inboxes
            .into_iter()
            .map(|v| v.into_iter().map(|(src, _seq, m)| (src, m)).collect())
            .collect();
        let h = bytes_out.iter().zip(&bytes_in).map(|(o, i)| o.max(i)).max().copied().unwrap_or(0);
        self.stats.retry_delay_secs += max_retry_delay;
        let comm_secs = if total > 0 {
            self.comm.latency_s + h as f64 / self.comm.bandwidth_bytes_per_s + max_retry_delay
        } else {
            self.comm.latency_s + max_retry_delay
        };
        self.comm_bytes += total as u64;
        if obs::enabled() && faults_on {
            for (key, delta) in [
                ("fault/drops", self.stats.drops_injected - stats_before.drops_injected),
                ("fault/retries", self.stats.retries - stats_before.retries),
                ("fault/messages_lost", self.stats.messages_lost - stats_before.messages_lost),
                (
                    "fault/duplicates",
                    self.stats.duplicates_injected - stats_before.duplicates_injected,
                ),
                ("fault/reorders", self.stats.reorders_injected - stats_before.reorders_injected),
            ] {
                if delta > 0 {
                    obs::record_count(key, delta);
                }
            }
        }

        // The comm segment occupies the barrier interval after the
        // slowest producer, identically on every rank (BSP h-relation).
        let comm_start = self.makespan + produce_max;
        if obs::enabled() && obs::tracing_enabled() {
            self.trace_rank_slices(comm_start, &vec![comm_secs; p], "comm");
        }

        // Consume sub-phase.
        let inboxes = std::sync::Mutex::new(
            inboxes.into_iter().map(Some).collect::<Vec<Option<Vec<(usize, M)>>>>(),
        );
        let (_, mut consume_secs, consume_base) =
            Self::timed_ranks(self.mode, &mut self.states, |r, s| {
                let inbox =
                    inboxes.lock().expect("poisoned")[r].take().expect("inbox consumed once");
                consume(r, s, inbox)
            });
        // Stragglers already counted once for this superstep (produce).
        let consume_max =
            self.finish_compute_times(&mut consume_secs, consume_base, &vec![false; p], false);
        self.trace_rank_slices(comm_start + comm_secs, &consume_secs, "compute");

        for (r, clock) in self.rank_clocks.iter_mut().enumerate() {
            clock.compute_secs += produce_secs[r] + consume_secs[r];
            clock.comm_secs += comm_secs;
            clock.bytes_sent += bytes_out[r] as u64;
            clock.bytes_received += bytes_in[r] as u64;
        }

        self.steps += 1;
        self.charge_split(produce_max + consume_max, comm_secs, total as u64);
    }

    /// Allgather collective: every rank contributes one value; the result
    /// (indexed by rank) is returned to the orchestrator AND can be read
    /// by every rank in a following superstep. Communication is charged
    /// as each rank broadcasting its value to all others.
    pub fn allgather<M: Send + Clone + MsgSize>(
        &mut self,
        f: impl Fn(usize, &mut S) -> M + Sync,
    ) -> Vec<M> {
        let p = self.size();
        let mut slots: Vec<Option<M>> = (0..p).map(|_| None).collect();
        {
            let slots_ref = std::sync::Mutex::new(&mut slots);
            self.exchange(
                |r, s| {
                    let v = f(r, s);
                    // Broadcast to all ranks (self included, matching
                    // MPI_Allgather semantics).
                    (0..p).map(|to| Envelope::new(to, v.clone())).collect()
                },
                |r, _s, inbox| {
                    if r == 0 {
                        let mut guard = slots_ref.lock().expect("poisoned");
                        for (src, m) in inbox {
                            guard[src] = Some(m);
                        }
                    }
                },
            );
        }
        slots.into_iter().map(|o| o.expect("allgather missing contribution")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_touches_every_rank() {
        let mut bsp = Bsp::new(vec![0u64; 8]);
        bsp.run(|r, s| *s = r as u64 * 10);
        assert_eq!(bsp.states(), &[0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(bsp.steps(), 1);
        assert!(bsp.makespan() > 0.0);
    }

    #[test]
    fn exchange_routes_point_to_point() {
        // Ring shift: rank r sends r² to (r+1) % p.
        let p = 5;
        let mut bsp = Bsp::new(vec![(0u64, 0usize); p]);
        bsp.exchange(
            |r, _s| vec![Envelope::new((r + 1) % p, (r * r) as u64)],
            |_r, s, inbox| {
                assert_eq!(inbox.len(), 1);
                s.0 = inbox[0].1;
                s.1 = inbox[0].0;
            },
        );
        for (r, &(val, src)) in bsp.states().iter().enumerate() {
            let expect_src = (r + p - 1) % p;
            assert_eq!(src, expect_src);
            assert_eq!(val, (expect_src * expect_src) as u64);
        }
        assert!(bsp.comm_bytes() > 0);
    }

    #[test]
    fn inbox_sorted_by_source() {
        let p = 6;
        let mut bsp = Bsp::new(vec![Vec::<usize>::new(); p]);
        bsp.exchange(
            |r, _s| (0..p).rev().map(|to| Envelope::new(to, r as u32)).collect(),
            |_r, s, inbox| {
                *s = inbox.iter().map(|(src, _)| *src).collect();
            },
        );
        for s in bsp.states() {
            assert_eq!(*s, (0..p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn allgather_replicates() {
        let mut bsp = Bsp::new(vec![0u32; 4]);
        let all = bsp.allgather(|r, _s| r as u32 + 100);
        assert_eq!(all, vec![100, 101, 102, 103]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let program = |bsp: &mut Bsp<Vec<u64>>| {
            bsp.run(|r, s| s.push(r as u64));
            bsp.exchange(
                |r, _s| vec![Envelope::new(0, r as u64 * 2)],
                |r, s, inbox| {
                    if r == 0 {
                        s.extend(inbox.into_iter().map(|(_, m)| m));
                    }
                },
            );
        };
        let mut a = Bsp::new(vec![Vec::new(); 4]);
        program(&mut a);
        let mut b = Bsp::new(vec![Vec::new(); 4]).with_mode(ExecMode::Threaded);
        program(&mut b);
        assert_eq!(a.into_states(), b.into_states());
    }

    #[test]
    fn phases_accumulate_makespan() {
        let mut bsp = Bsp::new(vec![(); 3]);
        bsp.phase("alpha");
        bsp.run(|_r, _s| {});
        bsp.phase("beta");
        bsp.run(|_r, _s| {});
        bsp.run(|_r, _s| {});
        let t = bsp.phase_times();
        assert!(t.secs("alpha") >= 0.0);
        assert!(t.secs("beta") >= 0.0);
        let total = t.total_secs();
        assert!((total - bsp.makespan()).abs() < 1e-9);
    }

    #[test]
    fn comm_model_charges_latency() {
        let comm = CommModel { latency_s: 1.0, bandwidth_bytes_per_s: 1e9 };
        let mut bsp = Bsp::new(vec![(); 2]).with_comm(comm);
        bsp.exchange(|_r, _s| vec![Envelope::new(0, 1u32)], |_r, _s, _in| {});
        assert!(bsp.makespan() >= 1.0, "latency must be charged");
    }

    #[test]
    fn rank_clocks_and_virtual_trace_slices() {
        obs::enable();
        obs::enable_tracing();
        let mut bsp = Bsp::new(vec![0u64; 3]);
        bsp.phase("rc_probe_compute");
        bsp.run(|r, s| *s = r as u64);
        bsp.phase("rc_probe_exchange");
        bsp.exchange(
            |r, _s| vec![Envelope::new((r + 1) % 3, vec![0u8; 64])],
            |_r, s, inbox: Vec<(usize, Vec<u8>)>| *s += inbox.len() as u64,
        );
        obs::disable_tracing();
        obs::disable();

        let clocks = bsp.rank_clocks();
        assert_eq!(clocks.len(), 3);
        for c in clocks {
            assert!(c.compute_secs > 0.0, "per-rank compute must accumulate");
            assert!(c.comm_secs > 0.0, "per-rank comm must accumulate");
            // The ring shift is symmetric: everyone sends and receives one
            // 64-byte payload.
            assert!(c.bytes_sent > 0);
            assert_eq!(c.bytes_sent, c.bytes_received);
        }

        // The virtual timeline carries one compute slice per rank for the
        // run, one produce + one consume compute slice and one comm slice
        // per rank for the exchange. Filter by this test's phase names:
        // other tests in the binary may trace concurrently.
        let trace = obs::take_trace();
        let (mut compute, mut comm) = (0usize, 0usize);
        let mut tracks = std::collections::BTreeSet::new();
        for e in trace.virtual_slices() {
            if let obs::trace::Event::Virtual { track, name, cat, .. } = &e.event {
                if !name.starts_with("rc_probe_") {
                    continue;
                }
                tracks.insert(*track);
                match cat.as_str() {
                    "compute" => compute += 1,
                    "comm" => comm += 1,
                    other => panic!("unexpected category {other:?}"),
                }
            }
        }
        assert_eq!(tracks.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(comm, 3, "one comm slice per rank for the exchange");
        assert_eq!(compute, 9, "run (3) + exchange produce (3) + consume (3)");
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn bad_destination_panics() {
        let mut bsp = Bsp::new(vec![(); 2]);
        bsp.exchange(|_r, _s| vec![Envelope::new(7, 0u32)], |_r, _s, _in| {});
    }

    #[test]
    fn crash_skips_rank_until_recovered() {
        use crate::fault::{Fault, FaultPlan};
        let plan = FaultPlan::new(1).with(Fault::Crash { rank: 1, superstep: 0 });
        let mut bsp = Bsp::new(vec![0u64; 3]).with_fault_plan(plan);
        bsp.run(|r, s| *s = r as u64 + 1);
        assert_eq!(bsp.states(), &[1, 0, 3], "crashed rank does no work");
        assert_eq!(bsp.crashed_ranks(), vec![1]);
        assert!(bsp.is_down(1));
        assert_eq!(bsp.fault_stats().crashes, 1);
        let steps_before = bsp.steps();
        let makespan_before = bsp.makespan();
        bsp.recover(1, |r, s| *s = r as u64 + 1);
        assert_eq!(bsp.states(), &[1, 2, 3], "recovery re-executes the lost work");
        assert!(bsp.crashed_ranks().is_empty());
        assert_eq!(bsp.fault_stats().recoveries, 1);
        assert_eq!(bsp.steps(), steps_before, "recovery must not advance fault addressing");
        assert!(bsp.makespan() > makespan_before, "recovery work is charged");
        // Next superstep proceeds normally.
        bsp.run(|_r, s| *s += 10);
        assert_eq!(bsp.states(), &[11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "is down entering")]
    fn unrecovered_crash_blocks_next_superstep() {
        use crate::fault::{Fault, FaultPlan};
        let plan = FaultPlan::new(1).with(Fault::Crash { rank: 0, superstep: 0 });
        let mut bsp = Bsp::new(vec![(); 2]).with_fault_plan(plan);
        bsp.run(|_r, _s| {});
        bsp.run(|_r, _s| {});
    }

    #[test]
    fn message_faults_leave_inbox_bit_identical() {
        use crate::fault::{Fault, FaultPlan};
        // All ranks send two tagged messages to rank 0; the faulted run
        // must deliver the exact fault-free inbox.
        let p = 4;
        let program = |bsp: &mut Bsp<Vec<(usize, u32)>>| {
            bsp.exchange(
                |r, _s| (0..2).map(|k| Envelope::new(0, (r as u32) * 10 + k)).collect(),
                |r, s, inbox| {
                    if r == 0 {
                        *s = inbox.into_iter().collect();
                    }
                },
            );
        };
        let mut clean = Bsp::new(vec![Vec::new(); p]);
        program(&mut clean);

        let plan = FaultPlan::new(42)
            .with(Fault::Drop { superstep: 0, from: 1, to: 0, attempts: 2 })
            .with(Fault::Duplicate { superstep: 0, from: 2, to: 0 })
            .with(Fault::Reorder { superstep: 0, to: 0 });
        let mut faulty = Bsp::new(vec![Vec::new(); p]).with_fault_plan(plan);
        program(&mut faulty);

        assert_eq!(clean.states()[0], faulty.states()[0], "delivery layer restores the inbox");
        let st = faulty.fault_stats();
        assert_eq!(st.drops_injected, 4, "2 dropped attempts x 2 messages on the 1->0 link");
        assert_eq!(st.retries, 4);
        assert_eq!(st.duplicates_injected, 2);
        assert_eq!(st.duplicates_discarded, 2);
        assert_eq!(st.reorders_injected, 1);
        assert_eq!(st.messages_lost, 0);
        assert!(st.retry_delay_secs > 0.0, "backoff must be charged");
        assert!(faulty.makespan() > clean.makespan(), "retries extend the barrier");
        assert!(faulty.comm_bytes() > clean.comm_bytes(), "retransmissions hit the wire");
    }

    #[test]
    fn drop_beyond_retry_budget_loses_message() {
        use crate::fault::{Fault, FaultPlan, RetryConfig};
        let plan =
            FaultPlan::new(3).with(Fault::Drop { superstep: 0, from: 1, to: 0, attempts: 1 });
        let mut bsp = Bsp::new(vec![Vec::<usize>::new(); 3])
            .with_fault_plan(plan)
            .with_retry(RetryConfig::none());
        bsp.exchange(
            |r, _s| vec![Envelope::new(0, r as u32)],
            |r, s, inbox| {
                if r == 0 {
                    *s = inbox.into_iter().map(|(src, _)| src).collect();
                }
            },
        );
        assert_eq!(bsp.states()[0], vec![0, 2], "message from rank 1 is gone");
        assert_eq!(bsp.fault_stats().messages_lost, 1);
        assert_eq!(bsp.fault_stats().retries, 0);
    }

    #[test]
    fn straggler_scales_virtual_clock() {
        use crate::fault::{Fault, FaultPlan};
        let plan = FaultPlan::new(9).with(Fault::Straggler { rank: 1, slowdown: 8.0 });
        let mut bsp = Bsp::new(vec![(); 2]).with_fault_plan(plan);
        bsp.run(|_r, _s| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert_eq!(bsp.fault_stats().straggled_steps, 1);
        let clocks = bsp.rank_clocks();
        assert!(
            clocks[1].compute_secs >= 4.0 * clocks[0].compute_secs,
            "straggler clock must be skewed (got {} vs {})",
            clocks[1].compute_secs,
            clocks[0].compute_secs
        );
        assert!(bsp.makespan() >= clocks[1].compute_secs);
    }

    #[test]
    fn empty_plan_is_neutral() {
        use crate::fault::FaultPlan;
        let program = |bsp: &mut Bsp<Vec<u64>>| {
            bsp.run(|r, s| s.push(r as u64));
            bsp.exchange(
                |r, _s| vec![Envelope::new(0, r as u64)],
                |r, s, inbox| {
                    if r == 0 {
                        s.extend(inbox.into_iter().map(|(_, m)| m));
                    }
                },
            );
        };
        let mut a = Bsp::new(vec![Vec::new(); 3]);
        program(&mut a);
        let mut b = Bsp::new(vec![Vec::new(); 3]).with_fault_plan(FaultPlan::new(5));
        program(&mut b);
        assert!(b.fault_stats().is_quiet());
        assert_eq!(a.comm_bytes(), b.comm_bytes());
        assert_eq!(a.into_states(), b.into_states());
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates_sequential() {
        // Failure injection: a crashing rank program must surface, not be
        // swallowed by the engine.
        let mut bsp = Bsp::new(vec![(); 3]);
        bsp.run(|r, _s| {
            if r == 1 {
                panic!("injected rank failure");
            }
        });
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates_threaded() {
        let mut bsp = Bsp::new(vec![(); 3]).with_mode(ExecMode::Threaded);
        bsp.exchange(
            |r, _s| {
                if r == 2 {
                    panic!("injected rank failure");
                }
                Vec::<Envelope<u32>>::new()
            },
            |_r, _s, _in| {},
        );
    }
}
