//! Geospatial scenario: cluster a vehicular-GPS-style road network
//! (the paper's 3DSRN workload). Road data forms long, thin,
//! arbitrary-shaped clusters — exactly what DBSCAN handles and k-means
//! does not — and is dense along roads, so μDBSCAN's wndq-core
//! labelling saves most neighbourhood queries.
//!
//! ```text
//! cargo run --release --example road_clustering
//! ```

use mudbscan_repro::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = data::road_network(40_000, 7);
    let params = DbscanParams::new(0.35, 5);
    println!("road-network clustering — n={}, dim=3\n", dataset.len());

    // μDBSCAN.
    let t = Instant::now();
    let mu = Runner::new(params).run(&dataset).expect("sequential run");
    let mu_secs = t.elapsed().as_secs_f64();

    // Classical R-tree DBSCAN for comparison.
    let t = Instant::now();
    let rd = RDbscan::new(params).run(&dataset);
    let rd_secs = t.elapsed().as_secs_f64();

    println!(
        "{:<12} {:>9} {:>10} {:>8} {:>14}",
        "algorithm", "time", "clusters", "noise", "queries saved"
    );
    println!(
        "{:<12} {:>8.2}s {:>10} {:>8} {:>13.1}%",
        "μDBSCAN",
        mu_secs,
        mu.clustering.n_clusters,
        mu.clustering.noise_count(),
        mu.counters.pct_queries_saved()
    );
    println!(
        "{:<12} {:>8.2}s {:>10} {:>8} {:>13.1}%",
        "R-DBSCAN",
        rd_secs,
        rd.clustering.n_clusters,
        rd.clustering.noise_count(),
        0.0
    );

    // Both must be exact DBSCAN, so the clusterings agree.
    let rep = check_exact(&mu.clustering, &rd.clustering, &dataset, &params);
    assert!(rep.is_exact(), "exactness violated: {rep:?}");
    println!("\nboth algorithms produce the identical (exact) DBSCAN clustering ✓");
    println!("speedup of μDBSCAN over R-DBSCAN: {:.2}x", rd_secs / mu_secs);

    // Largest clusters are road corridors: report their extents.
    let mut by_cluster: Vec<(usize, usize)> =
        mu.clustering.cluster_sizes().into_iter().enumerate().collect();
    by_cluster.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
    println!("\nlargest road corridors:");
    for &(cid, size) in by_cluster.iter().take(5) {
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for (p, l) in mu.clustering.labels.iter().enumerate() {
            if *l == cid as u32 {
                let c = dataset.point(p as u32);
                for k in 0..2 {
                    lo[k] = lo[k].min(c[k]);
                    hi[k] = hi[k].max(c[k]);
                }
            }
        }
        println!(
            "  cluster {cid:>3}: {size:>6} points, extent {:.0}×{:.0} map units",
            hi[0] - lo[0],
            hi[1] - lo[1]
        );
    }
}
