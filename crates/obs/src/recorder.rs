//! Flight recorder: a bounded ring buffer of recent serve activity,
//! dumped as a schema'd postmortem artifact when something goes wrong.
//!
//! A serving engine runs for hours; when it panics, poisons a lock, or
//! drifts from the batch oracle, the cumulative counters say *how much*
//! happened but not *what happened last*. The [`FlightRecorder`] keeps
//! the last `capacity` entries — per-epoch [`EpochDigest`]s plus
//! free-form notes — behind one short-critical-section mutex, so
//! recording an epoch is a cheap, bounded operation on the writer path.
//!
//! [`FlightRecorder::dump`] renders the ring as a JSON object tagged
//! with [`POSTMORTEM_SCHEMA`]; [`validate_postmortem`] and
//! [`parse_dump`] check and replay an artifact, so a postmortem file
//! round-trips: dump → render → parse → the same entries. The dump also
//! embeds [`crate::trace::dropped_events`], so the artifact itself
//! states whether the trace record was complete.

use crate::json::Json;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Schema tag written into every postmortem artifact.
pub const POSTMORTEM_SCHEMA: &str = "mudbscan.postmortem.v1";

/// What the serving writer decided to do about an epoch's removals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemovalDecision {
    /// No removals this epoch (or nothing needed doing).
    #[default]
    None,
    /// Every removal was repaired locally within the budget.
    Repaired,
    /// A repair exceeded its budget and the engine rebuilt from scratch.
    FallbackRebuild,
    /// Repairs succeeded but tombstone pressure triggered a compaction
    /// rebuild afterwards.
    CompactionRebuild,
}

impl RemovalDecision {
    /// Stable string form used in postmortem artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            RemovalDecision::None => "none",
            RemovalDecision::Repaired => "repaired",
            RemovalDecision::FallbackRebuild => "fallback_rebuild",
            RemovalDecision::CompactionRebuild => "compaction_rebuild",
        }
    }

    /// Parse the stable string form back ([`Self::as_str`] inverse).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(RemovalDecision::None),
            "repaired" => Some(RemovalDecision::Repaired),
            "fallback_rebuild" => Some(RemovalDecision::FallbackRebuild),
            "compaction_rebuild" => Some(RemovalDecision::CompactionRebuild),
            _ => None,
        }
    }
}

/// One serve epoch, digested: the op census, the repair-vs-rebuild
/// decision, its blast radius and the epoch's latencies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EpochDigest {
    /// Epoch number the digest describes.
    pub epoch: u64,
    /// Live points after the epoch published.
    pub live_points: u64,
    /// Points inserted this epoch.
    pub inserts: u64,
    /// Live points deleted this epoch.
    pub deletes: u64,
    /// Deletes that targeted unknown or already-dead ids.
    pub deletes_ignored: u64,
    /// TTL expiries applied this epoch.
    pub expiries: u64,
    /// Local repairs performed this epoch.
    pub repairs: u64,
    /// Blast radius: points touched across this epoch's repairs.
    pub repair_touched_points: u64,
    /// What the writer decided about this epoch's removals.
    pub decision: RemovalDecision,
    /// Microseconds spent applying the batch (ingest through publish).
    pub ingest_us: u64,
    /// Microseconds spent in the publish step alone.
    pub publish_us: u64,
}

/// One ring-buffer entry: an epoch digest or a free-form note, each
/// stamped with a monotone sequence number so wraparound is visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEntry {
    /// A digested serve epoch.
    Epoch {
        /// Position in the recorder's total history (0-based).
        seq: u64,
        /// The digest.
        digest: EpochDigest,
    },
    /// A free-form marker (fault injections, drift detections, …).
    Note {
        /// Position in the recorder's total history (0-based).
        seq: u64,
        /// The marker text.
        label: String,
    },
}

impl FlightEntry {
    fn seq(&self) -> u64 {
        match self {
            FlightEntry::Epoch { seq, .. } | FlightEntry::Note { seq, .. } => *seq,
        }
    }
}

#[derive(Debug, Default)]
struct RecState {
    entries: VecDeque<FlightEntry>,
    next_seq: u64,
}

/// A bounded, lock-cheap ring buffer of recent [`FlightEntry`]s.
///
/// ```
/// use obs::recorder::{EpochDigest, FlightRecorder};
/// let rec = FlightRecorder::new(2);
/// for epoch in 1..=3 {
///     rec.record_epoch(EpochDigest { epoch, ..Default::default() });
/// }
/// assert_eq!(rec.len(), 2);        // oldest entry evicted
/// assert_eq!(rec.recorded(), 3);   // total history is still counted
/// assert_eq!(rec.overwritten(), 1);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<RecState>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` entries
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), inner: Mutex::new(RecState::default()) }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, RecState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push(&self, entry: impl FnOnce(u64) -> FlightEntry) {
        let mut s = self.state();
        let seq = s.next_seq;
        s.next_seq += 1;
        if s.entries.len() == self.capacity {
            s.entries.pop_front();
        }
        s.entries.push_back(entry(seq));
    }

    /// Record one epoch digest (evicting the oldest entry when full).
    pub fn record_epoch(&self, digest: EpochDigest) {
        self.push(|seq| FlightEntry::Epoch { seq, digest });
    }

    /// Record a free-form marker (evicting the oldest entry when full).
    pub fn note(&self, label: &str) {
        let label = label.to_string();
        self.push(|seq| FlightEntry::Note { seq, label });
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.state().entries.len()
    }

    /// True when nothing has been recorded (or everything was evicted —
    /// impossible, eviction only happens on insert).
    pub fn is_empty(&self) -> bool {
        self.state().entries.is_empty()
    }

    /// Total entries ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.state().next_seq
    }

    /// Entries lost to ring wraparound.
    pub fn overwritten(&self) -> u64 {
        let s = self.state();
        s.next_seq - s.entries.len() as u64
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.state().entries.iter().cloned().collect()
    }

    /// Render the ring as a postmortem JSON artifact:
    /// `{schema, reason, capacity, recorded, overwritten,
    /// trace_dropped_events, entries: [...]}` with entries oldest
    /// first. The snapshot is taken under one lock acquisition, so a
    /// dump racing the writer sees a coherent prefix of history.
    pub fn dump(&self, reason: &str) -> Json {
        let (entries, recorded) = {
            let s = self.state();
            (s.entries.iter().cloned().collect::<Vec<_>>(), s.next_seq)
        };
        let overwritten = recorded - entries.len() as u64;
        let rows = entries
            .iter()
            .map(|e| match e {
                FlightEntry::Epoch { seq, digest } => Json::obj_from([
                    ("kind".to_string(), Json::Str("epoch".to_string())),
                    ("seq".to_string(), Json::Num(*seq as f64)),
                    ("epoch".to_string(), Json::Num(digest.epoch as f64)),
                    ("live_points".to_string(), Json::Num(digest.live_points as f64)),
                    ("inserts".to_string(), Json::Num(digest.inserts as f64)),
                    ("deletes".to_string(), Json::Num(digest.deletes as f64)),
                    ("deletes_ignored".to_string(), Json::Num(digest.deletes_ignored as f64)),
                    ("expiries".to_string(), Json::Num(digest.expiries as f64)),
                    ("repairs".to_string(), Json::Num(digest.repairs as f64)),
                    (
                        "repair_touched_points".to_string(),
                        Json::Num(digest.repair_touched_points as f64),
                    ),
                    ("decision".to_string(), Json::Str(digest.decision.as_str().to_string())),
                    ("ingest_us".to_string(), Json::Num(digest.ingest_us as f64)),
                    ("publish_us".to_string(), Json::Num(digest.publish_us as f64)),
                ]),
                FlightEntry::Note { seq, label } => Json::obj_from([
                    ("kind".to_string(), Json::Str("note".to_string())),
                    ("seq".to_string(), Json::Num(*seq as f64)),
                    ("label".to_string(), Json::Str(label.clone())),
                ]),
            })
            .collect();
        Json::obj_from([
            ("schema".to_string(), Json::Str(POSTMORTEM_SCHEMA.to_string())),
            ("reason".to_string(), Json::Str(reason.to_string())),
            ("capacity".to_string(), Json::Num(self.capacity as f64)),
            ("recorded".to_string(), Json::Num(recorded as f64)),
            ("overwritten".to_string(), Json::Num(overwritten as f64)),
            ("trace_dropped_events".to_string(), Json::Num(crate::trace::dropped_events() as f64)),
            ("entries".to_string(), Json::Arr(rows)),
        ])
    }

    /// Write [`Self::dump`] to `dir/<unix_ns>-<pid>.json`, creating the
    /// directory first. Returns the artifact path.
    pub fn dump_to_dir(&self, dir: &Path, reason: &str) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos());
        let path = dir.join(format!("{ns}-{}.json", std::process::id()));
        std::fs::write(&path, self.dump(reason).render_pretty())?;
        Ok(path)
    }
}

fn req_u64(js: &Json, key: &str) -> Result<u64, String> {
    js.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn req_str<'a>(js: &'a Json, key: &str) -> Result<&'a str, String> {
    js.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// Replay a postmortem artifact back into its [`FlightEntry`]s,
/// validating the schema tag and every per-entry field on the way.
pub fn parse_dump(js: &Json) -> Result<Vec<FlightEntry>, String> {
    let schema = req_str(js, "schema")?;
    if schema != POSTMORTEM_SCHEMA {
        return Err(format!("unknown postmortem schema '{schema}' (expected {POSTMORTEM_SCHEMA})"));
    }
    req_str(js, "reason")?;
    let capacity = req_u64(js, "capacity")?;
    if capacity == 0 {
        return Err("capacity must be positive".to_string());
    }
    let recorded = req_u64(js, "recorded")?;
    let overwritten = req_u64(js, "overwritten")?;
    req_u64(js, "trace_dropped_events")?;
    let rows = js
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing 'entries' array".to_string())?;
    if recorded != overwritten + rows.len() as u64 {
        return Err(format!(
            "entry accounting broken: recorded {recorded} != overwritten {overwritten} + retained {}",
            rows.len()
        ));
    }
    let mut entries = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let entry = match req_str(row, "kind").map_err(|e| format!("entry {i}: {e}"))? {
            "epoch" => FlightEntry::Epoch {
                seq: req_u64(row, "seq").map_err(|e| format!("entry {i}: {e}"))?,
                digest: EpochDigest {
                    epoch: req_u64(row, "epoch").map_err(|e| format!("entry {i}: {e}"))?,
                    live_points: req_u64(row, "live_points")
                        .map_err(|e| format!("entry {i}: {e}"))?,
                    inserts: req_u64(row, "inserts").map_err(|e| format!("entry {i}: {e}"))?,
                    deletes: req_u64(row, "deletes").map_err(|e| format!("entry {i}: {e}"))?,
                    deletes_ignored: req_u64(row, "deletes_ignored")
                        .map_err(|e| format!("entry {i}: {e}"))?,
                    expiries: req_u64(row, "expiries").map_err(|e| format!("entry {i}: {e}"))?,
                    repairs: req_u64(row, "repairs").map_err(|e| format!("entry {i}: {e}"))?,
                    repair_touched_points: req_u64(row, "repair_touched_points")
                        .map_err(|e| format!("entry {i}: {e}"))?,
                    decision: {
                        let d = req_str(row, "decision").map_err(|e| format!("entry {i}: {e}"))?;
                        RemovalDecision::parse(d)
                            .ok_or_else(|| format!("entry {i}: unknown decision '{d}'"))?
                    },
                    ingest_us: req_u64(row, "ingest_us").map_err(|e| format!("entry {i}: {e}"))?,
                    publish_us: req_u64(row, "publish_us")
                        .map_err(|e| format!("entry {i}: {e}"))?,
                },
            },
            "note" => FlightEntry::Note {
                seq: req_u64(row, "seq").map_err(|e| format!("entry {i}: {e}"))?,
                label: req_str(row, "label").map_err(|e| format!("entry {i}: {e}"))?.to_string(),
            },
            other => return Err(format!("entry {i}: unknown kind '{other}'")),
        };
        entries.push(entry);
    }
    for pair in entries.windows(2) {
        if pair[1].seq() != pair[0].seq() + 1 {
            return Err(format!(
                "non-contiguous sequence numbers: {} then {}",
                pair[0].seq(),
                pair[1].seq()
            ));
        }
    }
    Ok(entries)
}

/// Check that `js` is a well-formed postmortem artifact (schema tag,
/// required fields, contiguous sequence numbers, entry accounting).
pub fn validate_postmortem(js: &Json) -> Result<(), String> {
    parse_dump(js).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(epoch: u64) -> EpochDigest {
        EpochDigest {
            epoch,
            live_points: epoch * 10,
            inserts: 10,
            repairs: epoch % 2,
            decision: if epoch % 2 == 1 {
                RemovalDecision::Repaired
            } else {
                RemovalDecision::None
            },
            ingest_us: 100 + epoch,
            publish_us: 40 + epoch,
            ..Default::default()
        }
    }

    #[test]
    fn ring_wraparound_is_deterministic() {
        let rec = FlightRecorder::new(4);
        for e in 1..=10u64 {
            rec.record_epoch(digest(e));
        }
        rec.note("marker");
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.recorded(), 11);
        assert_eq!(rec.overwritten(), 7);
        let entries = rec.entries();
        // Exactly the last four survive, in order, seqs contiguous.
        let expect: Vec<FlightEntry> = vec![
            FlightEntry::Epoch { seq: 7, digest: digest(8) },
            FlightEntry::Epoch { seq: 8, digest: digest(9) },
            FlightEntry::Epoch { seq: 9, digest: digest(10) },
            FlightEntry::Note { seq: 10, label: "marker".to_string() },
        ];
        assert_eq!(entries, expect);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let rec = FlightRecorder::new(0);
        assert_eq!(rec.capacity(), 1);
        rec.note("a");
        rec.note("b");
        assert_eq!(rec.entries(), vec![FlightEntry::Note { seq: 1, label: "b".to_string() }]);
    }

    #[test]
    fn dump_round_trips_through_text() {
        let rec = FlightRecorder::new(8);
        for e in 1..=6u64 {
            rec.record_epoch(digest(e));
        }
        rec.note("exactness drift detected at epoch 6");
        let js = rec.dump("exactness_drift");
        validate_postmortem(&js).expect("fresh dump must be schema-valid");
        let text = js.render_pretty();
        let back = Json::parse(&text).expect("dump renders to parseable JSON");
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(POSTMORTEM_SCHEMA));
        assert_eq!(back.get("reason").and_then(Json::as_str), Some("exactness_drift"));
        let replayed = parse_dump(&back).expect("replay");
        assert_eq!(replayed, rec.entries(), "round trip reproduces the entries exactly");
    }

    #[test]
    fn validation_rejects_broken_artifacts() {
        let rec = FlightRecorder::new(4);
        rec.record_epoch(digest(1));
        let good = rec.dump("on_demand");
        let mut bad = good.clone();
        bad.set("schema", Json::Str("something.else".to_string()));
        assert!(validate_postmortem(&bad).unwrap_err().contains("unknown postmortem schema"));
        let mut bad = good.clone();
        bad.set("recorded", Json::Num(99.0));
        assert!(validate_postmortem(&bad).unwrap_err().contains("entry accounting"));
        let mut bad = good.clone();
        bad.set(
            "entries",
            Json::Arr(vec![Json::obj_from([("kind".to_string(), Json::Str("epoch".to_string()))])]),
        );
        assert!(validate_postmortem(&bad).is_err());
    }

    #[test]
    fn dump_to_dir_writes_a_parseable_artifact() {
        let dir = std::env::temp_dir().join(format!(
            "mudbscan-rec-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let rec = FlightRecorder::new(4);
        rec.record_epoch(digest(1));
        let path = rec.dump_to_dir(&dir, "on_demand").expect("write artifact");
        let text = std::fs::read_to_string(&path).expect("read back");
        let js = Json::parse(&text).expect("parse artifact");
        validate_postmortem(&js).expect("artifact is schema-valid");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_recording_and_dumping_stay_coherent() {
        let rec = FlightRecorder::new(16);
        std::thread::scope(|s| {
            s.spawn(|| {
                for e in 1..=200u64 {
                    rec.record_epoch(digest(e));
                }
            });
            s.spawn(|| {
                for _ in 0..50 {
                    let js = rec.dump("on_demand");
                    validate_postmortem(&js).expect("every racing dump is coherent");
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(rec.recorded(), 200);
        validate_postmortem(&rec.dump("final")).unwrap();
    }
}
