#![warn(missing_docs)]

//! Differential conformance harness for the workspace's exact DBSCAN
//! implementations.
//!
//! Every algorithm that claims paper-exactness is registered behind the
//! [`ExactDbscan`] trait ([`registry()`] enumerates them all: sequential
//! μDBSCAN under every ablation-knob combination, `ParMuDbscan` at several
//! thread counts, the three sequential baselines, and μDBSCAN-D at several
//! simulated rank counts). The harness runs each of them against the O(n²)
//! [`mudbscan::naive_dbscan`] oracle on randomized datasets drawn from the
//! families in [`datasets`] and checks the result with
//! [`mudbscan::check_exact`].
//!
//! When an implementation disagrees with the oracle, the failing dataset is
//! first minimized with the delta-debugging shrinker in [`shrink`] (rows
//! are greedily removed while the disagreement persists — re-validated
//! against the oracle at every step), then dumped as a JSON artifact to
//! `results/failures/<test>-<seed>.json` by [`artifact`]. The
//! `tests/replay.rs` suite replays every artifact found there, so each
//! past counterexample becomes a standing regression test.
//!
//! Determinism: dataset generation is seeded ([`datasets::DatasetSpec`]),
//! and the proptest shim derives its case seeds from the test name —
//! `PROPTEST_SEED` reproduces a run, `PROPTEST_CASES` caps CI cost.

pub mod artifact;
pub mod datasets;
pub mod harness;
pub mod registry;
pub mod shrink;

pub use artifact::FailureArtifact;
pub use datasets::{DatasetSpec, Family, FAMILIES};
pub use harness::{differential, run_case, CaseOutcome};
pub use registry::{registry, ExactDbscan};
pub use shrink::minimize;
