//! Fig. 5 reproduction: effect of varying ε on PDSDBSCAN-D,
//! GridDBSCAN-D and μDBSCAN-D (32 ranks) for the MPAGD100M3D and
//! FOF56M3D analogues.
//!
//! ```text
//! cargo run --release -p bench --bin repro_fig5
//! ```

use bench::{banner, secs, SEED};
use dist::{DistConfig, GridDbscanD, PdsDbscanD};
use metrics::Table;
use mudbscan::prelude::*;

/// μDBSCAN-D virtual runtime via the facade.
fn mu_runtime(params: DbscanParams, dataset: &Dataset) -> f64 {
    let out = Runner::new(params).ranks(32).run(dataset).expect("distributed run");
    match out.details {
        RunDetails::Distributed { runtime_secs, .. } => runtime_secs,
        ref other => panic!("expected Distributed details, got {other:?}"),
    }
}

fn main() {
    banner(
        "Fig. 5 — runtime vs ε for the three exact distributed algorithms",
        "runtime as ε grows, MPAGD100M3D (a) and FOF56M3D (b), 32 nodes",
        "galaxy analogues at 60K points; ε sweep scaled to generator units",
    );

    let workloads = [
        ("MPAGD100M3D", data::galaxy(60_000, 3, SEED), vec![0.5, 0.7, 0.9, 1.1], 5),
        ("FOF56M3D", data::galaxy(60_000, 3, SEED + 4), vec![1.0, 1.4, 1.8, 2.2], 6),
    ];

    for (name, dataset, eps_values, min_pts) in &workloads {
        println!("--- {name} (n={}, d=3, MinPts={min_pts}) ---", dataset.len());
        let mut t = Table::new(&["eps", "PDSDBSCAN-D", "GridDBSCAN-D", "μDBSCAN-D", "μ best?"]);
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &eps in eps_values {
            eprintln!("[{name}] eps={eps} ...");
            let params = DbscanParams::new(eps, *min_pts);
            let cfg = DistConfig::new(32);
            let mu = mu_runtime(params, dataset);
            let pds = PdsDbscanD::new(params, cfg).run(dataset).unwrap().runtime_secs;
            let grid = match GridDbscanD::new(params, cfg).run(dataset) {
                Ok(out) => secs(out.runtime_secs),
                Err(_) => "MemErr".into(),
            };
            series.push((eps, mu));
            t.row(&[
                format!("{eps}"),
                secs(pds),
                grid,
                secs(mu),
                if mu <= pds { "✓".into() } else { "✗".to_string() },
            ]);
        }
        t.print();
        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        println!(
            "μDBSCAN-D growth over the ε sweep: {:.1}% (paper: grows mildly —\n\
             post-processing of more wndq-cores dominates the saved query time)\n",
            100.0 * (last - first) / first
        );
    }

    println!("shape checks: μDBSCAN-D lowest at every ε; its % increase with ε");
    println!("is smaller than PDSDBSCAN-D's (paper Fig. 5).");
}
