//! Event tracing: per-thread append-only event buffers drained into a
//! [`Trace`] and exported as Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`).
//!
//! Tracing is a second, independent switch on top of the aggregate
//! collector: events are recorded only while **both** [`crate::enabled`]
//! and [`tracing_enabled`] are true, so permanently instrumented library
//! code still pays exactly one relaxed atomic load when observability is
//! off, and tracing adds nothing to the cost of aggregate-only
//! collection (the extra flag is read inside the already-enabled branch).
//!
//! ## Recording model
//!
//! * Each thread appends events to a **thread-local buffer** — no lock,
//!   no contention on the hot path. Buffers are flushed into a global
//!   sink when they grow large and, via the thread-local's destructor,
//!   when the thread exits; [`take_trace`] flushes the calling thread
//!   explicitly (main-thread TLS destructors are not guaranteed to run).
//!   Drain the trace from the coordinating thread *after* worker threads
//!   have been joined — the workspace's scoped-thread pools guarantee
//!   this ordering.
//! * Span begin/end events are emitted automatically by [`fn@crate::span`]
//!   guards; [`instant`] marks a point in time; [`virtual_slice`] records
//!   a segment on a **virtual clock** track (used by `cluster-sim` for
//!   the per-rank BSP compute/comm timeline, where "time" is the
//!   simulated distributed clock rather than the host's).
//! * Every event carries a globally unique, monotonically assigned
//!   sequence number, so the drained trace has a stable total order even
//!   when the OS clock is too coarse to break ties.
//!
//! ## Export
//!
//! [`Trace::to_chrome_json`] emits the Chrome trace-event array format:
//! wall-clock spans as `B`/`E` duration events under `pid` 1 (one `tid`
//! lane per OS thread, ids assigned in first-event order), instants as
//! `i`, and virtual-clock slices as complete `X` events under `pid` 2
//! with `tid` = BSP rank. Timestamps are microseconds as the format
//! requires. [`Trace::from_chrome_json`] parses the same format back
//! (used by the `trace_view` renderer and the CI well-formedness check).

use crate::json::Json;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex, PoisonError};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Events dropped because the thread-local buffer was gone (TLS
/// teardown). A postmortem can only claim the record is complete when
/// this is zero, so the loss is counted instead of silent.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Wall-clock origin for the whole process; all wall event timestamps
/// are nanoseconds since this instant.
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

/// The global sink flushed-to by per-thread buffers.
static SINK: LazyLock<Mutex<Vec<TaggedEvent>>> = LazyLock::new(|| Mutex::new(Vec::new()));

/// Flush the thread-local buffer once it holds this many events.
const FLUSH_THRESHOLD: usize = 1 << 14;

/// Turn event tracing on. Effective only while the aggregate collector
/// is also enabled ([`crate::enable`]).
pub fn enable_tracing() {
    // Materialise the epoch before the first event so early timestamps
    // are non-zero offsets rather than racing the LazyLock.
    let _ = *EPOCH;
    TRACING.store(true, Ordering::Relaxed);
}

/// Turn event tracing off. Spans already open still emit their balancing
/// end event (the guard remembers that it traced its begin).
pub fn disable_tracing() {
    TRACING.store(false, Ordering::Relaxed);
}

/// Whether the tracing switch is on (independent of [`crate::enabled`]).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// One traced event. Wall timestamps are nanoseconds since the process
/// trace epoch; virtual timestamps are nanoseconds on the caller's
/// simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened (paired with the next unmatched [`Event::End`] on
    /// the same thread).
    Begin {
        /// Wall nanoseconds since the trace epoch.
        t_ns: u64,
        /// Span name (leaf, not the slash-joined path).
        name: String,
    },
    /// A span closed.
    End {
        /// Wall nanoseconds since the trace epoch.
        t_ns: u64,
    },
    /// A point event.
    Instant {
        /// Wall nanoseconds since the trace epoch.
        t_ns: u64,
        /// Event label.
        name: String,
    },
    /// A segment on a virtual-clock track (BSP rank timeline).
    Virtual {
        /// Track id (BSP rank).
        track: u32,
        /// Segment label (usually the BSP phase name).
        name: String,
        /// Category: `"compute"` or `"comm"`.
        cat: String,
        /// Virtual start, nanoseconds.
        start_ns: u64,
        /// Virtual duration, nanoseconds.
        dur_ns: u64,
    },
}

/// An [`Event`] plus its recording thread and global sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedEvent {
    /// Dense per-process thread id (assigned at each thread's first
    /// traced event, in order of first use).
    pub tid: u32,
    /// Global monotone sequence number: a stable total order.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

struct LocalBuf {
    tid: u32,
    events: Vec<TaggedEvent>,
}

impl LocalBuf {
    fn new() -> Self {
        Self { tid: NEXT_TID.fetch_add(1, Ordering::Relaxed), events: Vec::new() }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        sink.append(&mut self.events);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

#[inline]
fn now_ns() -> u64 {
    EPOCH.elapsed().as_nanos() as u64
}

fn push(event: Event) {
    // Tolerate re-entrant access during thread teardown (TLS destructor
    // ordering): drop the event rather than panic — but *count* the loss
    // (`obs/trace_dropped_events`), so a postmortem can state whether
    // the trace record is complete.
    let pushed = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        let tid = b.tid;
        b.events.push(TaggedEvent { tid, seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed), event });
        if b.events.len() >= FLUSH_THRESHOLD {
            b.flush();
        }
    });
    if pushed.is_err() {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Number of trace events dropped (rather than recorded) because a
/// thread's buffer was already torn down when the event fired. Reset by
/// [`crate::reset`]; folded into reports as the
/// `obs/trace_dropped_events` counter and into postmortem artifacts so
/// they can state whether the record is complete.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Drain the dropped-event counter (used by [`crate::take_report`], so
/// the one-shot report keeps its drain semantics).
pub(crate) fn take_dropped() -> u64 {
    DROPPED.swap(0, Ordering::Relaxed)
}

/// Record a span-begin event. Called by [`crate::span`]; the guard calls
/// [`span_end`] on drop iff it called this.
pub(crate) fn span_begin(name: &'static str) {
    push(Event::Begin { t_ns: now_ns(), name: name.to_string() });
}

/// Record the balancing span-end event.
pub(crate) fn span_end() {
    push(Event::End { t_ns: now_ns() });
}

/// Record a point event on the calling thread's wall timeline. No-op
/// unless both collection and tracing are enabled.
pub fn instant(name: &str) {
    if !crate::enabled() || !tracing_enabled() {
        return;
    }
    push(Event::Instant { t_ns: now_ns(), name: name.to_string() });
}

/// Record a segment on a virtual-clock track: `track` is the BSP rank,
/// `cat` is `"compute"` or `"comm"`, and the time range is
/// `[start_secs, start_secs + dur_secs]` on the *simulated* clock.
/// No-op unless both collection and tracing are enabled.
pub fn virtual_slice(track: u32, name: &str, cat: &str, start_secs: f64, dur_secs: f64) {
    if !crate::enabled() || !tracing_enabled() {
        return;
    }
    push(Event::Virtual {
        track,
        name: name.to_string(),
        cat: cat.to_string(),
        start_ns: (start_secs * 1e9).max(0.0).round() as u64,
        dur_ns: (dur_secs * 1e9).max(0.0).round() as u64,
    });
}

/// Flush the calling thread's buffer and drain every flushed event into
/// a [`Trace`], sorted by global sequence number. Events buffered on
/// *other threads that are still alive* are not included — drain from
/// the coordinating thread after joining workers.
pub fn take_trace() -> Trace {
    let _ = BUF.try_with(|b| b.borrow_mut().flush());
    let mut events = {
        let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *sink)
    };
    events.sort_by_key(|e| e.seq);
    Trace { events }
}

/// Discard all flushed events and the calling thread's buffer. Called by
/// [`crate::reset`] so one reset clears every collection layer.
pub(crate) fn clear() {
    let _ = BUF.try_with(|b| b.borrow_mut().events.clear());
    SINK.lock().unwrap_or_else(PoisonError::into_inner).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// A reconstructed wall-clock span interval (from a balanced
/// begin/end pair on one thread).
#[derive(Debug, Clone, PartialEq)]
pub struct WallSlice {
    /// Recording thread.
    pub tid: u32,
    /// Nesting depth at begin time (0 = thread root).
    pub depth: usize,
    /// Slash-joined path of the span stack at begin time.
    pub path: String,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub end_ns: u64,
}

/// A drained trace: every event recorded during the collection window,
/// in global sequence order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All events, sorted by [`TaggedEvent::seq`].
    pub events: Vec<TaggedEvent>,
}

impl Trace {
    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Reconstruct wall-clock span intervals from begin/end pairs,
    /// per thread. Spans still open at drain time are closed at the
    /// latest wall timestamp observed on their thread.
    pub fn wall_slices(&self) -> Vec<WallSlice> {
        use std::collections::HashMap;
        let mut stacks: HashMap<u32, Vec<(String, u64)>> = HashMap::new();
        let mut last_ts: HashMap<u32, u64> = HashMap::new();
        let mut out = Vec::new();
        for ev in &self.events {
            match &ev.event {
                Event::Begin { t_ns, name } => {
                    let stack = stacks.entry(ev.tid).or_default();
                    let path = if stack.is_empty() {
                        name.clone()
                    } else {
                        format!("{}/{}", stack.last().unwrap().0, name)
                    };
                    stack.push((path, *t_ns));
                    last_ts.insert(ev.tid, *t_ns);
                }
                Event::End { t_ns } => {
                    let stack = stacks.entry(ev.tid).or_default();
                    if let Some((path, start_ns)) = stack.pop() {
                        out.push(WallSlice {
                            tid: ev.tid,
                            depth: stack.len(),
                            path,
                            start_ns,
                            end_ns: *t_ns,
                        });
                    }
                    last_ts.insert(ev.tid, *t_ns);
                }
                Event::Instant { t_ns, .. } => {
                    last_ts.insert(ev.tid, *t_ns);
                }
                Event::Virtual { .. } => {}
            }
        }
        // Close dangling spans at the thread's last seen timestamp.
        for (tid, stack) in stacks {
            let end = last_ts.get(&tid).copied().unwrap_or(0);
            for (i, (path, start_ns)) in stack.iter().enumerate() {
                out.push(WallSlice {
                    tid,
                    depth: i,
                    path: path.clone(),
                    start_ns: *start_ns,
                    end_ns: end.max(*start_ns),
                });
            }
        }
        out.sort_by_key(|a| (a.tid, a.start_ns, a.depth));
        out
    }

    /// All virtual-clock slices, in sequence order.
    pub fn virtual_slices(&self) -> Vec<&TaggedEvent> {
        self.events.iter().filter(|e| matches!(e.event, Event::Virtual { .. })).collect()
    }

    /// Export as a Chrome trace-event JSON document:
    /// `{"displayTimeUnit": "ms", "traceEvents": [...]}` with wall spans
    /// under `pid` 1 and virtual-clock tracks under `pid` 2.
    pub fn to_chrome_json(&self) -> Json {
        const US: f64 = 1e-3; // ns → µs
        let mut events: Vec<Json> = Vec::with_capacity(self.events.len() + 2);
        for (pid, pname) in [(1u32, "wall"), (2u32, "bsp-virtual")] {
            events.push(Json::obj_from([
                ("name".to_string(), Json::Str("process_name".to_string())),
                ("ph".to_string(), Json::Str("M".to_string())),
                ("pid".to_string(), Json::Num(pid as f64)),
                ("tid".to_string(), Json::Num(0.0)),
                (
                    "args".to_string(),
                    Json::obj_from([("name".to_string(), Json::Str(pname.to_string()))]),
                ),
            ]));
        }
        for ev in &self.events {
            let js = match &ev.event {
                Event::Begin { t_ns, name } => Json::obj_from([
                    ("name".to_string(), Json::Str(name.clone())),
                    ("ph".to_string(), Json::Str("B".to_string())),
                    ("ts".to_string(), Json::Num(*t_ns as f64 * US)),
                    ("pid".to_string(), Json::Num(1.0)),
                    ("tid".to_string(), Json::Num(ev.tid as f64)),
                ]),
                Event::End { t_ns } => Json::obj_from([
                    ("ph".to_string(), Json::Str("E".to_string())),
                    ("ts".to_string(), Json::Num(*t_ns as f64 * US)),
                    ("pid".to_string(), Json::Num(1.0)),
                    ("tid".to_string(), Json::Num(ev.tid as f64)),
                ]),
                Event::Instant { t_ns, name } => Json::obj_from([
                    ("name".to_string(), Json::Str(name.clone())),
                    ("ph".to_string(), Json::Str("i".to_string())),
                    ("s".to_string(), Json::Str("t".to_string())),
                    ("ts".to_string(), Json::Num(*t_ns as f64 * US)),
                    ("pid".to_string(), Json::Num(1.0)),
                    ("tid".to_string(), Json::Num(ev.tid as f64)),
                ]),
                Event::Virtual { track, name, cat, start_ns, dur_ns } => Json::obj_from([
                    ("name".to_string(), Json::Str(name.clone())),
                    ("cat".to_string(), Json::Str(cat.clone())),
                    ("ph".to_string(), Json::Str("X".to_string())),
                    ("ts".to_string(), Json::Num(*start_ns as f64 * US)),
                    ("dur".to_string(), Json::Num(*dur_ns as f64 * US)),
                    ("pid".to_string(), Json::Num(2.0)),
                    ("tid".to_string(), Json::Num(*track as f64)),
                ]),
            };
            events.push(js);
        }
        Json::obj_from([
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
            ("traceEvents".to_string(), Json::Arr(events)),
        ])
    }

    /// Parse a Chrome trace-event document produced by
    /// [`Trace::to_chrome_json`] (or compatible). Metadata (`M`) events
    /// are skipped; anything structurally invalid is an error, which is
    /// what the CI trace smoke step relies on.
    pub fn from_chrome_json(js: &Json) -> Result<Trace, String> {
        const NS: f64 = 1e3; // µs → ns
        let arr =
            js.get("traceEvents").and_then(Json::as_array).ok_or("missing traceEvents array")?;
        let mut events = Vec::new();
        for (i, ev) in arr.iter().enumerate() {
            let ph = ev
                .get("ph")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing ph"))?;
            if ph == "M" {
                continue;
            }
            let ts = ev
                .get("ts")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing ts"))?;
            if ts < 0.0 || !ts.is_finite() {
                return Err(format!("event {i}: bad ts {ts}"));
            }
            let tid = ev
                .get("tid")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing tid"))? as u32;
            let name = |required: bool| -> Result<String, String> {
                match ev.get("name").and_then(Json::as_str) {
                    Some(s) => Ok(s.to_string()),
                    None if required => Err(format!("event {i}: missing name")),
                    None => Ok(String::new()),
                }
            };
            let t_ns = (ts * NS).round() as u64;
            let event = match ph {
                "B" => Event::Begin { t_ns, name: name(true)? },
                "E" => Event::End { t_ns },
                "i" | "I" => Event::Instant { t_ns, name: name(true)? },
                "X" => {
                    let dur = ev
                        .get("dur")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {i}: X without dur"))?;
                    if dur < 0.0 || !dur.is_finite() {
                        return Err(format!("event {i}: bad dur {dur}"));
                    }
                    Event::Virtual {
                        track: tid,
                        name: name(true)?,
                        cat: ev.get("cat").and_then(Json::as_str).unwrap_or("compute").to_string(),
                        start_ns: t_ns,
                        dur_ns: (dur * NS).round() as u64,
                    }
                }
                other => return Err(format!("event {i}: unsupported ph '{other}'")),
            };
            events.push(TaggedEvent { tid, seq: i as u64, event });
        }
        Ok(Trace { events })
    }

    /// Structural validation used by the CI trace smoke step: begin/end
    /// events balance per thread (never more ends than begins, and no
    /// dangling begins), and wall timestamps are non-decreasing per
    /// thread. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut depth: HashMap<u32, i64> = HashMap::new();
        let mut last: HashMap<u32, u64> = HashMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            let t = match &ev.event {
                Event::Begin { t_ns, .. } => {
                    *depth.entry(ev.tid).or_insert(0) += 1;
                    Some(*t_ns)
                }
                Event::End { t_ns } => {
                    let d = depth.entry(ev.tid).or_insert(0);
                    *d -= 1;
                    if *d < 0 {
                        return Err(format!("event {i}: end without begin on tid {}", ev.tid));
                    }
                    Some(*t_ns)
                }
                Event::Instant { t_ns, .. } => Some(*t_ns),
                Event::Virtual { .. } => None,
            };
            if let Some(t) = t {
                let prev = last.entry(ev.tid).or_insert(0);
                if t < *prev {
                    return Err(format!("event {i}: wall time regressed on tid {}", ev.tid));
                }
                *prev = t;
            }
        }
        for (tid, d) in depth {
            if d != 0 {
                return Err(format!("tid {tid}: {d} unbalanced span begin(s)"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(tid: u32, seq: u64, event: Event) -> TaggedEvent {
        TaggedEvent { tid, seq, event }
    }

    fn sample() -> Trace {
        Trace {
            events: vec![
                mk(0, 0, Event::Begin { t_ns: 100, name: "outer".into() }),
                mk(0, 1, Event::Begin { t_ns: 200, name: "inner".into() }),
                mk(0, 2, Event::Instant { t_ns: 250, name: "tick".into() }),
                mk(0, 3, Event::End { t_ns: 300 }),
                mk(0, 4, Event::End { t_ns: 500 }),
                mk(
                    0,
                    5,
                    Event::Virtual {
                        track: 2,
                        name: "local".into(),
                        cat: "compute".into(),
                        start_ns: 0,
                        dur_ns: 40_000,
                    },
                ),
            ],
        }
    }

    #[test]
    fn wall_slices_reconstruct_nesting() {
        let slices = sample().wall_slices();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].path, "outer");
        assert_eq!(slices[0].depth, 0);
        assert_eq!((slices[0].start_ns, slices[0].end_ns), (100, 500));
        assert_eq!(slices[1].path, "outer/inner");
        assert_eq!(slices[1].depth, 1);
        assert_eq!((slices[1].start_ns, slices[1].end_ns), (200, 300));
    }

    #[test]
    fn chrome_json_round_trips() {
        let t = sample();
        let js = t.to_chrome_json();
        let text = js.render_pretty();
        let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
        let back = Trace::from_chrome_json(&parsed).expect("re-parse");
        // Event payloads survive (seq is re-assigned from array order).
        let evs: Vec<&Event> = back.events.iter().map(|e| &e.event).collect();
        let orig: Vec<&Event> = t.events.iter().map(|e| &e.event).collect();
        assert_eq!(evs, orig);
        back.validate().expect("round-tripped trace validates");
    }

    #[test]
    fn validate_rejects_imbalance() {
        let t = Trace { events: vec![mk(0, 0, Event::End { t_ns: 10 })] };
        assert!(t.validate().unwrap_err().contains("end without begin"));
        let t = Trace { events: vec![mk(0, 0, Event::Begin { t_ns: 10, name: "x".into() })] };
        assert!(t.validate().unwrap_err().contains("unbalanced"));
        let t = Trace {
            events: vec![
                mk(0, 0, Event::Begin { t_ns: 10, name: "x".into() }),
                mk(0, 1, Event::End { t_ns: 5 }),
            ],
        };
        assert!(t.validate().unwrap_err().contains("regressed"));
    }

    /// Satellite: events fired during TLS teardown must be *recorded or
    /// counted*, never silently lost. The TLS destructor order between
    /// the probe and the trace buffer is unspecified, so the test pins
    /// the conservation law that holds either way: recorded + dropped
    /// accounts for every attempt.
    #[test]
    fn tls_teardown_drops_are_counted_not_silent() {
        let _g = crate::test_support::locked();
        crate::reset();
        crate::enable();
        enable_tracing();
        const N: usize = 5;
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                for _ in 0..N {
                    instant("probe-teardown");
                }
            }
        }
        thread_local! {
            static PROBE: Probe = const { Probe };
        }
        let before = dropped_events();
        std::thread::spawn(|| {
            instant("probe-body"); // initialise the trace buffer first
            PROBE.with(|_| {}); // then the probe, so teardown order is contested
        })
        .join()
        .unwrap();
        disable_tracing();
        crate::disable();
        let trace = take_trace();
        let recorded = trace
            .events
            .iter()
            .filter(|e| matches!(&e.event, Event::Instant { name, .. } if name == "probe-teardown"))
            .count();
        let dropped = (dropped_events() - before) as usize;
        assert_eq!(
            recorded + dropped,
            N,
            "teardown events must be recorded or counted, never silent"
        );
        crate::reset();
    }

    #[test]
    fn from_chrome_json_rejects_malformed() {
        let missing = Json::parse(r#"{"traceEvents": [{"ph": "B", "pid": 1, "tid": 0}]}"#).unwrap();
        assert!(Trace::from_chrome_json(&missing).unwrap_err().contains("missing ts"));
        let no_dur = Json::parse(
            r#"{"traceEvents": [{"ph": "X", "name": "a", "ts": 1, "pid": 2, "tid": 0}]}"#,
        )
        .unwrap();
        assert!(Trace::from_chrome_json(&no_dur).unwrap_err().contains("without dur"));
        let not_arr = Json::parse(r#"{"traceEvents": 3}"#).unwrap();
        assert!(Trace::from_chrome_json(&not_arr).is_err());
    }
}
